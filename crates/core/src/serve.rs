//! Throughput-mode simulation serving (ROADMAP open item 1).
//!
//! Every other entry point in this workspace is a one-shot repro binary;
//! this module is the long-running counterpart: a [`SimServer`] accepts
//! [`SimRequest`]s through a bounded admission queue, fans batches across
//! `support::par` workers over shared-immutable [`DeviceConfig`] / LUT
//! state, and consults a **content-addressed launch-report cache** before
//! simulating anything.
//!
//! ## Cache-correctness argument
//!
//! The cache key is the FNV-1a 64 hash of [`SimRequest::canonical_string`]
//! — a canonical JSON rendering with a pinned field order, integer-only
//! policy fields, and the seed spelled as a hex string (so no value is
//! ever squeezed through an `f64`). Canonicalization is **total** (every
//! request renders) and **injective** (distinct requests render
//! differently, since every request field appears verbatim); both
//! properties are enforced by property tests. A lookup only counts as a
//! hit when the stored canonical string matches byte-for-byte, so even a
//! 64-bit hash collision cannot alias two requests.
//!
//! A hit is byte-identical to a fresh simulation because of the PR 2
//! determinism contract: every worker runs its engine at `threads = 1`
//! ([`SamplePolicy`] pinned), so a report is a pure function of the
//! canonicalized request — which is exactly what the key hashes. Cache
//! reads and writes happen only on the owner thread (phases A and C of
//! [`SimServer::drain`]); workers touch disjoint result slots. Eviction
//! and worker count therefore change *when* a simulation runs, never what
//! bytes come back — the differential serving suite
//! (`tests/serving_equivalence.rs`) checks this at 1 vs 4 workers and
//! cold vs warm cache.
//!
//! ## Overload behaviour
//!
//! When the queue is full (or the `serve.enqueue` fault point fires),
//! [`SimServer::submit`] sheds the request with a typed
//! [`DefconError::Overloaded`]. The batch driver [`SimServer::serve`]
//! responds by draining the backlog and retrying once; if admission still
//! fails, the request is degraded one rung down the paper's
//! `tex2D++ → tex2D → software` ladder ([`SamplingMethod::degrade`]) and
//! served inline — shed → degrade → serve, never silently dropped. The
//! `serve.cache` fault point models a corrupt cache entry: the entry is
//! dropped and the request re-simulated, which re-derives identical bytes.

use std::time::Instant;

use defcon_gpusim::{DeviceConfig, Gpu, KernelReport, SamplePolicy};
use defcon_kernels::op::{synthetic_inputs, DeformConvOp, OpFamily, SamplingMethod};
use defcon_kernels::DeformLayerShape;
use defcon_support::error::DefconError;
use defcon_support::json::{Json, ToJson};
use defcon_support::par::ParallelSliceMut;
use defcon_support::{env, fault, obs};

use crate::lut::{LatencyKey, LatencyLut};

/// FNV-1a 64-bit hash — the content-address function for cache keys and
/// report digests. Stable across platforms, runs, and Rust versions.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A simulated device a request can target, addressed by canonical name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeDevice {
    /// The Jetson AGX Xavier preset (`"xavier-agx"`).
    XavierAgx,
    /// The RTX 2080 Ti preset (`"rtx2080ti"`).
    Rtx2080Ti,
}

impl ServeDevice {
    /// The name used in canonical request JSON and cache keys.
    pub fn canonical_name(&self) -> &'static str {
        match self {
            ServeDevice::XavierAgx => "xavier-agx",
            ServeDevice::Rtx2080Ti => "rtx2080ti",
        }
    }

    /// Resolves a canonical name back to a device.
    pub fn from_name(name: &str) -> Option<ServeDevice> {
        ServeDevice::all()
            .into_iter()
            .find(|d| d.canonical_name() == name)
    }

    /// The device preset this request target resolves to.
    pub fn config(&self) -> DeviceConfig {
        DeviceConfig::preset(self.canonical_name())
            .expect("every ServeDevice name is a DeviceConfig preset")
    }

    /// Every servable device.
    pub fn all() -> [ServeDevice; 2] {
        [ServeDevice::XavierAgx, ServeDevice::Rtx2080Ti]
    }
}

/// Per-request simulation policy. Integer-only on purpose: every field
/// lands in the canonical JSON, and floats would make canonicalization
/// rendering-sensitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestPolicy {
    /// Block-sampling budget for the engine (see [`SamplePolicy`]).
    pub max_blocks: usize,
    /// Seed for the synthetic input/offset tensors.
    pub seed: u64,
    /// Offset spread in milli-pixels (4000 = the paper's ±4.0 px).
    pub spread_milli: u32,
}

impl Default for RequestPolicy {
    fn default() -> Self {
        RequestPolicy {
            max_blocks: 96,
            seed: 2024,
            spread_milli: 4000,
        }
    }
}

impl RequestPolicy {
    /// The offset spread in pixels.
    pub fn spread(&self) -> f32 {
        self.spread_milli as f32 / 1000.0
    }
}

/// One unit of serving work: simulate `kernel_family` for `layer` on
/// `device` under `policy`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRequest {
    /// Target device preset.
    pub device: ServeDevice,
    /// The deformable layer to simulate.
    pub layer: DeformLayerShape,
    /// Which sampling kernel family to run.
    pub kernel_family: SamplingMethod,
    /// Which deformable operator generation to simulate (v1/v2/v3).
    pub op_family: OpFamily,
    /// Simulation policy knobs.
    pub policy: RequestPolicy,
}

impl SimRequest {
    /// The canonical JSON form: pinned field order, integer-only values,
    /// the seed as a hex string. This is the *content* the cache
    /// addresses — two requests are the same job iff their canonical
    /// forms are byte-identical.
    ///
    /// The `op_family` field is emitted **only** for v2/v3 (right after
    /// `kernel_family`): every pre-family request — always implicitly
    /// v1 — renders to exactly the bytes it rendered to before the field
    /// existed, so persisted digests and pinned FNV vectors survive the
    /// format extension.
    pub fn canonical(&self) -> Json {
        let l = &self.layer;
        let mut fields = vec![
            ("v", Json::from(1u64)),
            ("device", Json::str(self.device.canonical_name())),
            (
                "layer",
                Json::obj(vec![
                    ("n", Json::from(l.n)),
                    ("c_in", Json::from(l.c_in)),
                    ("c_out", Json::from(l.c_out)),
                    ("h", Json::from(l.h)),
                    ("w", Json::from(l.w)),
                    ("kernel", Json::from(l.kernel)),
                    ("stride", Json::from(l.stride)),
                    ("pad", Json::from(l.pad)),
                    ("deform_groups", Json::from(l.deform_groups)),
                ]),
            ),
            ("kernel_family", Json::str(self.kernel_family.name())),
        ];
        if self.op_family != OpFamily::DcnV1 {
            fields.push(("op_family", Json::str(self.op_family.name())));
        }
        fields.push((
            "policy",
            Json::obj(vec![
                ("max_blocks", Json::from(self.policy.max_blocks)),
                ("seed", Json::str(format!("{:016x}", self.policy.seed))),
                ("spread_milli", Json::from(self.policy.spread_milli as u64)),
            ]),
        ));
        Json::obj(fields)
    }

    /// [`SimRequest::canonical`] rendered to bytes.
    pub fn canonical_string(&self) -> String {
        self.canonical().to_string()
    }

    /// The content-address of this request.
    pub fn cache_key(&self) -> u64 {
        fnv1a64(self.canonical_string().as_bytes())
    }

    /// The same request one rung down the fallback ladder, or `None` at
    /// the software floor. Used as the overload degradation response.
    pub fn degraded(&self) -> Option<SimRequest> {
        self.kernel_family
            .degrade()
            .map(|kernel_family| SimRequest {
                kernel_family,
                ..self.clone()
            })
    }
}

/// What a cache lookup returns on a hit.
pub struct CachedHit {
    /// The cached per-launch reports.
    pub reports: Vec<KernelReport>,
    /// The sampling method that produced them.
    pub method: SamplingMethod,
    /// Fallback-ladder degradations recorded at simulation time.
    pub degradations: Vec<String>,
    /// Wall-clock time the lookup took.
    pub latency_ns: u64,
}

struct CacheEntry {
    key: u64,
    canonical: String,
    reports: Vec<KernelReport>,
    method: SamplingMethod,
    degradations: Vec<String>,
    last_used: u64,
}

/// A bounded, LRU-evicting, content-addressed launch-report cache.
///
/// Lookups verify the full canonical string, not just the 64-bit key, so
/// a hash collision degrades to a miss instead of aliasing two requests.
/// The `serve.cache` fault point drops the matching entry at lookup time
/// (modelling corruption): the caller re-simulates and re-inserts
/// identical bytes.
pub struct ReportCache {
    capacity: usize,
    entries: Vec<CacheEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    drops: u64,
}

impl ReportCache {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ReportCache {
            capacity,
            entries: Vec::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            drops: 0,
        }
    }

    /// Looks up a content address. Only a byte-identical canonical string
    /// counts as a hit; the `serve.cache` fault point drops the matching
    /// entry instead (forcing a deterministic re-simulation).
    pub fn lookup(&mut self, key: u64, canonical: &str) -> Option<CachedHit> {
        let t0 = Instant::now();
        let pos = self
            .entries
            .iter()
            .position(|e| e.key == key && e.canonical == canonical);
        let Some(i) = pos else {
            self.misses += 1;
            return None;
        };
        if fault::fires("serve.cache") {
            // Injected corruption: the stored bytes are untrustworthy, so
            // drop the entry and miss — the fresh simulation re-derives
            // identical bytes and re-inserts them.
            self.entries.remove(i);
            self.drops += 1;
            self.misses += 1;
            return None;
        }
        self.tick += 1;
        self.entries[i].last_used = self.tick;
        self.hits += 1;
        let e = &self.entries[i];
        Some(CachedHit {
            reports: e.reports.clone(),
            method: e.method,
            degradations: e.degradations.clone(),
            latency_ns: t0.elapsed().as_nanos() as u64,
        })
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used
    /// one when at capacity.
    pub fn insert(
        &mut self,
        key: u64,
        canonical: String,
        reports: &[KernelReport],
        method: SamplingMethod,
        degradations: &[String],
    ) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.key == key && e.canonical == canonical)
        {
            e.last_used = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            let mut lru = 0;
            for (i, e) in self.entries.iter().enumerate() {
                if e.last_used < self.entries[lru].last_used {
                    lru = i;
                }
            }
            self.entries.swap_remove(lru);
            self.evictions += 1;
        }
        self.entries.push(CacheEntry {
            key,
            canonical,
            reports: reports.to_vec(),
            method,
            degradations: degradations.to_vec(),
            last_used: self.tick,
        });
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh simulation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by the LRU bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Entries dropped by the `serve.cache` fault point.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Lifetime hit rate in `[0, 1]` (0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Server sizing. All three knobs have env overrides (see
/// [`ServeConfig::with_env_overrides`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker bands for miss simulation. Worker count never changes
    /// response bytes — each worker pins its engine to `threads = 1`.
    pub workers: usize,
    /// Admission-queue capacity; a full queue sheds with
    /// [`DefconError::Overloaded`].
    pub queue_capacity: usize,
    /// Report-cache capacity in entries.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: defcon_gpusim::default_threads(),
            queue_capacity: 64,
            cache_capacity: 256,
        }
    }
}

impl ServeConfig {
    /// Applies `DEFCON_SERVE_QUEUE` / `DEFCON_SERVE_CACHE` overrides on
    /// top of `self`. (`workers` already follows `DEFCON_THREADS` through
    /// [`defcon_gpusim::default_threads`] in [`ServeConfig::default`].)
    pub fn with_env_overrides(mut self) -> Result<Self, DefconError> {
        if let Some(q) = env::positive_usize(env::SERVE_QUEUE)? {
            self.queue_capacity = q;
        }
        if let Some(c) = env::positive_usize(env::SERVE_CACHE)? {
            self.cache_capacity = c;
        }
        Ok(self)
    }

    /// The default configuration with env overrides applied.
    pub fn from_env() -> Result<Self, DefconError> {
        ServeConfig::default().with_env_overrides()
    }
}

/// One served request: the reports that answered it plus provenance
/// (cache hit? degraded at admission? which rung actually ran?).
#[derive(Clone, Debug)]
pub struct SimResponse {
    /// The request as served (post-degradation if admission degraded it).
    pub request: SimRequest,
    /// Content-address of `request`.
    pub key: u64,
    /// Per-launch reports from the simulation (or the cache).
    pub reports: Vec<KernelReport>,
    /// The sampling method that actually ran (fallback ladder may have
    /// stepped down from `request.kernel_family`).
    pub method: SamplingMethod,
    /// One line per fallback-ladder rung skipped inside the simulation.
    pub degradations: Vec<String>,
    /// True when answered from the report cache.
    pub from_cache: bool,
    /// True when admission control degraded this request before serving.
    pub degraded_admission: bool,
    /// Wall-clock time to answer (cache lookup or simulation). Excluded
    /// from [`SimResponse::content_json`] — timing is not content.
    pub latency_ns: u64,
    /// `deform − regular` latency from the server's LUT, when attached
    /// and the layer is tabulated.
    pub dcn_overhead_ms: Option<f64>,
    /// Simulation failure rendering, when the request could not be
    /// served (reports empty in that case).
    pub error: Option<String>,
}

impl SimResponse {
    /// The response *content* — everything that must be byte-identical
    /// across worker counts and cache temperatures. Deliberately excludes
    /// `from_cache`, `degraded_admission`, and `latency_ns`, which
    /// describe *how* the answer was produced, not the answer.
    pub fn content_json(&self) -> Json {
        Json::obj(vec![
            ("request", self.request.canonical()),
            ("key", Json::str(format!("{:016x}", self.key))),
            ("method", Json::str(self.method.name())),
            (
                "degradations",
                Json::Arr(self.degradations.iter().map(Json::str).collect()),
            ),
            (
                "dcn_overhead_ms",
                self.dcn_overhead_ms.map_or(Json::Null, Json::from),
            ),
            ("error", self.error.as_deref().map_or(Json::Null, Json::str)),
            (
                "reports",
                Json::Arr(self.reports.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    /// [`SimResponse::content_json`] rendered to bytes.
    pub fn content_string(&self) -> String {
        self.content_json().to_string()
    }
}

enum Plan {
    Hit(CachedHit),
    Miss(usize),
}

struct SimOutcome {
    result: Result<(Vec<KernelReport>, SamplingMethod, Vec<String>), DefconError>,
    latency_ns: u64,
}

fn simulate_request(req: &SimRequest, device: &DeviceConfig) -> SimOutcome {
    let t0 = Instant::now();
    // Engine threads pinned to 1: report bytes must be a pure function of
    // the canonical request, independent of the server's worker count.
    let gpu = Gpu::with_policy(
        device.clone(),
        SamplePolicy {
            max_blocks: req.policy.max_blocks,
            threads: 1,
        },
    );
    let (x, offsets) = synthetic_inputs(&req.layer, req.policy.spread(), req.policy.seed);
    // `modulation: None` — the trace is keyed on the family alone, never
    // on modulation *values*, so a served v2/v3 request needs no tensor;
    // the kernels still emit the family's mask/logit loads and arithmetic.
    let op = DeformConvOp {
        method: req.kernel_family,
        family: req.op_family,
        ..DeformConvOp::baseline(req.layer)
    };
    let result = op
        .simulate_deform_with_fallback(&gpu, &x, &offsets)
        .map(|fb| (fb.reports, fb.method, fb.degradations));
    SimOutcome {
        result,
        latency_ns: t0.elapsed().as_nanos() as u64,
    }
}

/// The throughput-mode simulation service. See the module docs for the
/// correctness argument; see `repro_serving` for a driveable session.
pub struct SimServer {
    cfg: ServeConfig,
    /// Shared-immutable device state, resolved once at construction.
    devices: Vec<(ServeDevice, DeviceConfig)>,
    lut: Option<LatencyLut>,
    queue: Vec<SimRequest>,
    cache: ReportCache,
    sheds: u64,
    served: u64,
    degraded_admissions: u64,
}

impl SimServer {
    /// A server with an empty queue and a cold cache.
    pub fn new(cfg: ServeConfig) -> Self {
        let devices = ServeDevice::all()
            .into_iter()
            .map(|d| (d, d.config()))
            .collect();
        SimServer {
            cache: ReportCache::new(cfg.cache_capacity),
            cfg,
            devices,
            lut: None,
            queue: Vec::new(),
            sheds: 0,
            served: 0,
            degraded_admissions: 0,
        }
    }

    /// Attaches a latency LUT; responses for tabulated layers then carry
    /// `dcn_overhead_ms`. The LUT is shared-immutable serving state.
    pub fn with_lut(mut self, lut: LatencyLut) -> Self {
        self.lut = Some(lut);
        self
    }

    fn device_config(&self, device: ServeDevice) -> &DeviceConfig {
        self.devices
            .iter()
            .find(|(d, _)| *d == device)
            .map(|(_, cfg)| cfg)
            .expect("SimServer::new resolves every ServeDevice")
    }

    /// Admits one request into the bounded queue. A full queue — or a
    /// firing `serve.enqueue` fault — sheds the request with a typed
    /// [`DefconError::Overloaded`]; nothing is partially admitted.
    pub fn submit(&mut self, req: SimRequest) -> Result<(), DefconError> {
        let depth = self.queue.len();
        // Short-circuit: the fault point is only consulted for requests
        // the queue could actually hold, so `fault::log()` indices stay
        // deterministic under overflow.
        if depth >= self.cfg.queue_capacity || fault::fires("serve.enqueue") {
            self.sheds += 1;
            obs::event_with("serve.shed", || {
                vec![
                    ("depth", Json::from(depth)),
                    ("capacity", Json::from(self.cfg.queue_capacity)),
                ]
            });
            return Err(DefconError::Overloaded {
                what: "serve queue".to_string(),
                queue_depth: depth,
                capacity: self.cfg.queue_capacity,
            });
        }
        self.queue.push(req);
        obs::gauge_set("serve.queue_depth", self.queue.len() as f64);
        Ok(())
    }

    /// Serves everything queued and returns responses in submission
    /// order. Three phases keep the result deterministic: (A) cache
    /// consultation on the owner thread in request order, (B) miss
    /// simulation fanned across worker bands into disjoint slots, (C)
    /// assembly and cache insertion back on the owner thread in request
    /// order.
    pub fn drain(&mut self) -> Vec<SimResponse> {
        let batch = std::mem::take(&mut self.queue);
        if batch.is_empty() {
            return Vec::new();
        }
        let workers = self.cfg.workers.max(1);
        let drain_span = obs::span_with("serve.drain", || {
            vec![
                ("depth", Json::from(batch.len())),
                ("workers", Json::from(workers)),
            ]
        });

        // Phase A — content-address each request and consult the cache.
        let mut keys: Vec<(u64, String)> = Vec::with_capacity(batch.len());
        let mut plans: Vec<Plan> = Vec::with_capacity(batch.len());
        let mut jobs: Vec<usize> = Vec::new();
        for req in &batch {
            let canonical = req.canonical_string();
            let key = fnv1a64(canonical.as_bytes());
            match self.cache.lookup(key, &canonical) {
                Some(hit) => plans.push(Plan::Hit(hit)),
                None => {
                    plans.push(Plan::Miss(jobs.len()));
                    jobs.push(keys.len());
                }
            }
            keys.push((key, canonical));
        }

        // Phase B — simulate the misses. Workers read shared-immutable
        // device state and write disjoint one-slot bands.
        let mut slots: Vec<Option<SimOutcome>> = jobs.iter().map(|_| None).collect();
        {
            let devices = &self.devices;
            let batch_ref = &batch;
            let jobs_ref = &jobs;
            slots
                .par_chunks_mut(1)
                .threads(workers)
                .enumerate()
                .for_each(|(i, slot)| {
                    let req = &batch_ref[jobs_ref[i]];
                    let cfg = devices
                        .iter()
                        .find(|(d, _)| *d == req.device)
                        .map(|(_, c)| c)
                        .expect("SimServer::new resolves every ServeDevice");
                    slot[0] = Some(simulate_request(req, cfg));
                });
        }

        // Phase C — assemble responses and fill the cache, in order.
        let mut out = Vec::with_capacity(batch.len());
        let (mut hits, mut misses) = (0u64, 0u64);
        for (i, ((req, plan), (key, canonical))) in
            batch.into_iter().zip(plans).zip(keys).enumerate()
        {
            let (reports, method, degradations, from_cache, error, latency_ns) = match plan {
                Plan::Hit(hit) => {
                    hits += 1;
                    (
                        hit.reports,
                        hit.method,
                        hit.degradations,
                        true,
                        None,
                        hit.latency_ns,
                    )
                }
                Plan::Miss(j) => {
                    misses += 1;
                    let outcome = slots[j].take().expect("phase B fills every miss slot");
                    match outcome.result {
                        Ok((reports, method, degradations)) => {
                            self.cache
                                .insert(key, canonical, &reports, method, &degradations);
                            (
                                reports,
                                method,
                                degradations,
                                false,
                                None,
                                outcome.latency_ns,
                            )
                        }
                        Err(e) => (
                            Vec::new(),
                            req.kernel_family,
                            Vec::new(),
                            false,
                            Some(e.to_string()),
                            outcome.latency_ns,
                        ),
                    }
                }
            };
            let request_span = obs::span_with("serve.request", || {
                vec![
                    ("index", Json::from(i)),
                    ("device", Json::str(req.device.canonical_name())),
                    ("kernel_family", Json::str(req.kernel_family.name())),
                    ("key", Json::str(format!("{key:016x}"))),
                ]
            });
            request_span.record("from_cache", Json::Bool(from_cache));
            request_span.record("reports", Json::from(reports.len()));
            drop(request_span);
            self.served += 1;
            out.push(SimResponse {
                dcn_overhead_ms: self.lut_overhead(&req),
                request: req,
                key,
                reports,
                method,
                degradations,
                from_cache,
                degraded_admission: false,
                latency_ns,
                error,
            });
        }
        obs::counter_add("serve.requests", out.len() as u64);
        obs::counter_add("serve.cache_hits", hits);
        obs::counter_add("serve.cache_misses", misses);
        obs::gauge_set("serve.queue_depth", 0.0);
        obs::gauge_set("serve.hit_rate", self.cache.hit_rate());
        drain_span.record("hits", Json::from(hits));
        drain_span.record("misses", Json::from(misses));
        drop(drain_span);
        out
    }

    /// Serves one request on the owner thread, bypassing the queue. Used
    /// for degraded admissions; same cache discipline as [`drain`].
    ///
    /// [`drain`]: SimServer::drain
    fn serve_inline(&mut self, req: SimRequest, degraded_admission: bool) -> SimResponse {
        let canonical = req.canonical_string();
        let key = fnv1a64(canonical.as_bytes());
        let t0 = Instant::now();
        let (reports, method, degradations, from_cache, error) =
            match self.cache.lookup(key, &canonical) {
                Some(hit) => (hit.reports, hit.method, hit.degradations, true, None),
                None => {
                    let outcome = simulate_request(&req, self.device_config(req.device));
                    match outcome.result {
                        Ok((reports, method, degradations)) => {
                            self.cache
                                .insert(key, canonical, &reports, method, &degradations);
                            (reports, method, degradations, false, None)
                        }
                        Err(e) => (
                            Vec::new(),
                            req.kernel_family,
                            Vec::new(),
                            false,
                            Some(e.to_string()),
                        ),
                    }
                }
            };
        obs::counter_add("serve.requests", 1);
        obs::counter_add(
            if from_cache {
                "serve.cache_hits"
            } else {
                "serve.cache_misses"
            },
            1,
        );
        obs::gauge_set("serve.hit_rate", self.cache.hit_rate());
        self.served += 1;
        SimResponse {
            dcn_overhead_ms: self.lut_overhead(&req),
            request: req,
            key,
            reports,
            method,
            degradations,
            from_cache,
            degraded_admission,
            latency_ns: t0.elapsed().as_nanos() as u64,
            error,
        }
    }

    fn lut_overhead(&self, req: &SimRequest) -> Option<f64> {
        let lut = self.lut.as_ref()?;
        lut.try_dcn_overhead_ms(&LatencyKey::of(&req.layer)).ok()
    }

    /// Drives a whole request stream through admission control:
    /// submit; on overload, drain the backlog and retry; if admission
    /// still fails, degrade one ladder rung and serve inline. Responses
    /// come back in submission order.
    pub fn serve(&mut self, reqs: &[SimRequest]) -> Vec<SimResponse> {
        let mut out = Vec::with_capacity(reqs.len());
        for req in reqs {
            if self.submit(req.clone()).is_ok() {
                continue;
            }
            out.extend(self.drain());
            match self.submit(req.clone()) {
                Ok(()) => {}
                Err(e) => {
                    // Admission keeps failing even against an empty
                    // queue — shed → degrade → serve.
                    let degraded = req.degraded().unwrap_or_else(|| req.clone());
                    self.degraded_admissions += 1;
                    obs::event_with("serve.degrade", || {
                        vec![
                            ("from", Json::str(req.kernel_family.name())),
                            ("to", Json::str(degraded.kernel_family.name())),
                            ("error", Json::str(e.to_string())),
                        ]
                    });
                    out.push(self.serve_inline(degraded, true));
                }
            }
        }
        out.extend(self.drain());
        out
    }

    /// The sizing this server was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Read-only view of the report cache (stats and size).
    pub fn cache(&self) -> &ReportCache {
        &self.cache
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests shed by admission control.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Responses produced over this server's lifetime.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests that were degraded at admission before being served.
    pub fn degraded_admissions(&self) -> u64 {
        self.degraded_admissions
    }
}

/// Nearest-rank percentile (`p` in 0–100) of an ascending-sorted sample,
/// for the serving bench's p50/p99 latency summary. 0 for empty input.
pub fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_request(c: usize, family: SamplingMethod) -> SimRequest {
        SimRequest {
            device: ServeDevice::XavierAgx,
            layer: DeformLayerShape::same3x3(c, c, 10, 10),
            kernel_family: family,
            op_family: OpFamily::DcnV1,
            policy: RequestPolicy {
                max_blocks: 16,
                ..RequestPolicy::default()
            },
        }
    }

    fn cfg(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            queue_capacity: 8,
            cache_capacity: 32,
        }
    }

    #[test]
    fn canonical_form_is_stable_and_parses() {
        let req = tiny_request(4, SamplingMethod::Tex2dPlusPlus);
        let a = req.canonical_string();
        let b = req.canonical_string();
        assert_eq!(a, b);
        let doc = Json::parse(&a).expect("canonical form is valid JSON");
        assert_eq!(doc.str_field("device"), Ok("xavier-agx"));
        assert_eq!(doc.str_field("kernel_family"), Ok("tex2D++"));
    }

    #[test]
    fn device_names_round_trip() {
        for d in ServeDevice::all() {
            assert_eq!(ServeDevice::from_name(d.canonical_name()), Some(d));
            assert!(!d.config().name.is_empty());
        }
        assert_eq!(ServeDevice::from_name("abacus"), None);
    }

    #[test]
    fn queue_overflow_is_a_typed_overloaded_error() {
        let _quiet = fault::quiesce();
        let mut server = SimServer::new(ServeConfig {
            workers: 1,
            queue_capacity: 2,
            cache_capacity: 8,
        });
        let req = tiny_request(2, SamplingMethod::SoftwareBilinear);
        server.submit(req.clone()).expect("first fits");
        server.submit(req.clone()).expect("second fits");
        let err = server.submit(req).expect_err("third overflows");
        assert!(matches!(
            err,
            DefconError::Overloaded {
                queue_depth: 2,
                capacity: 2,
                ..
            }
        ));
        assert!(err.is_degradable());
        assert_eq!(server.sheds(), 1);
    }

    #[test]
    fn worker_count_does_not_change_response_bytes() {
        let _quiet = fault::quiesce();
        let reqs: Vec<SimRequest> = [
            SamplingMethod::Tex2dPlusPlus,
            SamplingMethod::Tex2d,
            SamplingMethod::SoftwareBilinear,
        ]
        .into_iter()
        .flat_map(|m| [tiny_request(2, m), tiny_request(4, m)])
        .collect();
        let serve_with = |workers: usize| -> Vec<String> {
            let mut server = SimServer::new(cfg(workers));
            let mut contents: Vec<String> = server
                .serve(&reqs)
                .iter()
                .map(SimResponse::content_string)
                .collect();
            contents.sort();
            contents
        };
        assert_eq!(serve_with(1), serve_with(3));
    }

    #[test]
    fn cache_hits_are_byte_identical_and_counted() {
        let _quiet = fault::quiesce();
        let mut server = SimServer::new(cfg(1));
        let reqs = vec![
            tiny_request(2, SamplingMethod::Tex2d),
            tiny_request(4, SamplingMethod::Tex2d),
        ];
        let cold = server.serve(&reqs);
        let warm = server.serve(&reqs);
        assert!(cold.iter().all(|r| !r.from_cache));
        assert!(warm.iter().all(|r| r.from_cache));
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.content_string(), w.content_string());
        }
        assert_eq!(server.cache().hits(), 2);
        assert_eq!(server.cache().misses(), 2);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let _quiet = fault::quiesce();
        let mut cache = ReportCache::new(2);
        let reports: Vec<KernelReport> = Vec::new();
        let m = SamplingMethod::Tex2d;
        cache.insert(1, "a".into(), &reports, m, &[]);
        cache.insert(2, "b".into(), &reports, m, &[]);
        assert!(cache.lookup(1, "a").is_some(), "refresh a");
        cache.insert(3, "c".into(), &reports, m, &[]); // evicts b, the LRU
        assert!(cache.lookup(1, "a").is_some());
        assert!(cache.lookup(2, "b").is_none());
        assert!(cache.lookup(3, "c").is_some());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn collision_without_matching_canonical_is_a_miss() {
        let _quiet = fault::quiesce();
        let mut cache = ReportCache::new(4);
        cache.insert(7, "a".into(), &[], SamplingMethod::Tex2d, &[]);
        assert!(
            cache.lookup(7, "b").is_none(),
            "same key, different content"
        );
        assert!(cache.lookup(7, "a").is_some());
    }

    #[test]
    fn degraded_request_steps_down_the_ladder() {
        let req = tiny_request(2, SamplingMethod::Tex2dPlusPlus);
        let d1 = req.degraded().expect("tex2D++ degrades");
        assert_eq!(d1.kernel_family, SamplingMethod::Tex2d);
        let d2 = d1.degraded().expect("tex2D degrades");
        assert_eq!(d2.kernel_family, SamplingMethod::SoftwareBilinear);
        assert_eq!(d2.degraded(), None);
        // Only the family changes — the rest of the request is intact.
        assert_eq!(d2.layer, req.layer);
        assert_eq!(d2.policy, req.policy);
    }

    #[test]
    fn lut_backed_responses_carry_dcn_overhead() {
        let _quiet = fault::quiesce();
        let req = tiny_request(2, SamplingMethod::Tex2d);
        let gpu = Gpu::new(ServeDevice::XavierAgx.config());
        let lut = LatencyLut::build(
            &gpu,
            &[LatencyKey::of(&req.layer)],
            SamplingMethod::Tex2d,
            defcon_kernels::op::OffsetPredictorKind::Standard,
        );
        let mut server = SimServer::new(cfg(1)).with_lut(lut);
        let out = server.serve(std::slice::from_ref(&req));
        assert!(out[0].dcn_overhead_ms.is_some());
        // A layer outside the LUT yields None, not an error.
        let out2 = server.serve(&[tiny_request(4, SamplingMethod::Tex2d)]);
        assert!(out2[0].dcn_overhead_ms.is_none());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sample = [10, 20, 30, 40];
        assert_eq!(percentile_ns(&sample, 50.0), 20);
        assert_eq!(percentile_ns(&sample, 99.0), 40);
        assert_eq!(percentile_ns(&sample, 0.0), 10);
        assert_eq!(percentile_ns(&[], 50.0), 0);
    }
}
