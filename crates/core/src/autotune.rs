//! Tile-size autotuning (paper Fig. 8).
//!
//! The paper tunes the thread-block tile of the texture kernels offline
//! with ytopt, a Bayesian-optimization autotuner. This module implements
//! the same algorithm class from scratch: a Gaussian-process surrogate
//! (RBF kernel, Cholesky solve) with the expected-improvement acquisition
//! over the discrete tile space, plus random- and exhaustive-search
//! baselines for comparison.

use defcon_kernels::TileConfig;
use defcon_support::error::DefconError;
use defcon_support::fault;
use defcon_support::json::Json;
use defcon_support::obs;
use defcon_support::par::ParallelSliceMut;
use defcon_support::rng::{SeedableRng, SliceRandom, StdRng};

/// How the tuner explores the space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Gaussian-process Bayesian optimization with expected improvement.
    Bayesian,
    /// Uniform random sampling without replacement.
    Random,
    /// Evaluate every candidate (ground truth; costs the full space).
    Exhaustive,
}

/// Tuning outcome.
#[derive(Clone, Debug)]
pub struct AutotuneResult {
    /// Best tile found.
    pub best: TileConfig,
    /// Objective value (milliseconds) at the best tile.
    pub best_value: f64,
    /// Every evaluated `(tile, value)` pair, in evaluation order.
    pub evaluations: Vec<(TileConfig, f64)>,
    /// Strategy used.
    pub strategy: Strategy,
}

/// The autotuner.
pub struct Autotuner {
    /// Exploration strategy.
    pub strategy: Strategy,
    /// Evaluation budget (ignored for exhaustive).
    pub budget: usize,
    /// RNG seed (initial design and random baseline).
    pub seed: u64,
}

impl Autotuner {
    /// A Bayesian tuner with the given budget.
    pub fn bayesian(budget: usize, seed: u64) -> Self {
        Autotuner {
            strategy: Strategy::Bayesian,
            budget,
            seed,
        }
    }

    /// Minimizes `objective` over `space`.
    ///
    /// The exhaustive strategy evaluates candidates in parallel (worker
    /// count from `DEFCON_THREADS`, else all cores); the evaluation list
    /// stays in space order and each candidate is evaluated exactly once,
    /// so the result is identical to the sequential sweep for any thread
    /// count. Bayesian and random search stay sequential — each of their
    /// evaluations depends on the previous ones.
    pub fn run(
        &self,
        space: &[TileConfig],
        objective: impl Fn(TileConfig) -> f64 + Sync,
    ) -> AutotuneResult {
        assert!(!space.is_empty(), "empty search space");
        let run_span = obs::span_with("autotune.run", || {
            vec![
                ("strategy", Json::str(format!("{:?}", self.strategy))),
                ("budget", Json::from(self.budget)),
                ("space", Json::from(space.len())),
            ]
        });
        let evaluations = match self.strategy {
            Strategy::Exhaustive => {
                let mut vals = vec![0.0f64; space.len()];
                vals.par_chunks_mut(1)
                    .enumerate()
                    .for_each(|(i, v)| v[0] = objective(space[i]));
                space.iter().copied().zip(vals).collect()
            }
            Strategy::Random => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                let mut order: Vec<TileConfig> = space.to_vec();
                order.shuffle(&mut rng);
                order
                    .into_iter()
                    .take(self.budget.min(space.len()))
                    .map(|t| (t, objective(t)))
                    .collect()
            }
            Strategy::Bayesian => self.run_bayesian(space, &objective),
        };
        let (best, best_value) = evaluations
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one evaluation");
        run_span.record("evaluations", Json::from(evaluations.len()));
        run_span.record("best_value", Json::from(best_value));
        AutotuneResult {
            best,
            best_value,
            evaluations,
            strategy: self.strategy,
        }
    }

    fn run_bayesian(
        &self,
        space: &[TileConfig],
        objective: &impl Fn(TileConfig) -> f64,
    ) -> Vec<(TileConfig, f64)> {
        let budget = self.budget.min(space.len());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut remaining: Vec<TileConfig> = space.to_vec();
        remaining.shuffle(&mut rng);
        let mut evals: Vec<(TileConfig, f64)> = Vec::with_capacity(budget);

        // Initial design: 3 random points (or the budget if smaller).
        let init = 3.min(budget);
        for _ in 0..init {
            let t = remaining.pop().expect("space exhausted during init");
            evals.push((t, objective(t)));
        }

        while evals.len() < budget && !remaining.is_empty() {
            let xs: Vec<[f64; 2]> = evals.iter().map(|(t, _)| features(*t)).collect();
            let ys: Vec<f64> = evals.iter().map(|(_, v)| v).copied().collect();
            let gp = match Gp::fit(&xs, &ys) {
                Ok(gp) => gp,
                Err(_) => {
                    // Graceful degradation: the surrogate is unfittable even
                    // with jitter (degenerate evaluations, duplicate tiles).
                    // Spend the remaining budget as seeded random search —
                    // `remaining` is already seed-shuffled, so the fallback
                    // is as deterministic as the happy path.
                    obs::event_with("autotune.gp_fallback", || {
                        vec![
                            ("evaluated", Json::from(evals.len())),
                            ("budget", Json::from(budget)),
                        ]
                    });
                    while evals.len() < budget {
                        let Some(t) = remaining.pop() else { break };
                        evals.push((t, objective(t)));
                    }
                    break;
                }
            };
            let best_y = ys.iter().copied().fold(f64::INFINITY, f64::min);
            // Pick the remaining candidate with maximal expected improvement.
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    let (mu, var) = gp.predict(features(t));
                    (i, expected_improvement(mu, var.max(1e-12).sqrt(), best_y))
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty remaining set");
            let t = remaining.swap_remove(idx);
            evals.push((t, objective(t)));
        }
        evals
    }
}

/// Tile features: log2 extents (the space is geometric).
fn features(t: TileConfig) -> [f64; 2] {
    [(t.h as f64).log2(), (t.w as f64).log2()]
}

/// Expected improvement for minimization.
fn expected_improvement(mu: f64, sigma: f64, best: f64) -> f64 {
    if sigma <= 0.0 {
        return (best - mu).max(0.0);
    }
    let z = (best - mu) / sigma;
    (best - mu) * normal_cdf(z) + sigma * normal_pdf(z)
}

fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Abramowitz–Stegun 7.1.26 rational approximation of Φ via erf.
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// A small exact Gaussian process (RBF kernel + observation noise) for the
/// handful of points the tuner evaluates.
#[derive(Debug)]
struct Gp {
    xs: Vec<[f64; 2]>,
    alpha: Vec<f64>,
    chol: Vec<f64>,
    n: usize,
    y_mean: f64,
    y_std: f64,
    length_scale: f64,
}

impl Gp {
    /// Fits the GP, retrying a failed Cholesky with escalating diagonal
    /// jitter (1e-3, 1e-2, 1e-1 on top of the base 1e-4 noise). The first
    /// attempt is bit-identical to the pre-jitter implementation, so the
    /// happy path reproduces historical tuning traces exactly. When even
    /// the largest jitter cannot make the kernel matrix positive definite,
    /// the error is [`DefconError::RetriesExhausted`] and the caller falls
    /// back to random search.
    fn fit(xs: &[[f64; 2]], ys: &[f64]) -> Result<Gp, DefconError> {
        let n = xs.len();
        assert!(n > 0 && n == ys.len());
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let y_var = ys.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = y_var.sqrt().max(1e-9);
        let ysn: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();
        let length_scale = 1.0; // one octave in log2 tile space

        const JITTERS: [f64; 4] = [0.0, 1e-3, 1e-2, 1e-1];
        for jitter in JITTERS {
            let noise = 1e-4 + jitter;
            // K + noise·I, then Cholesky.
            let mut k = vec![0.0f64; n * n];
            for i in 0..n {
                for j in 0..n {
                    k[i * n + j] = rbf(xs[i], xs[j], length_scale);
                }
                k[i * n + i] += noise;
            }
            let Ok(chol) = cholesky(&k, n) else { continue };
            let alpha = chol_solve(&chol, n, &ysn);
            return Ok(Gp {
                xs: xs.to_vec(),
                alpha,
                chol,
                n,
                y_mean,
                y_std,
                length_scale,
            });
        }
        Err(DefconError::RetriesExhausted {
            what: "GP Cholesky with escalating jitter".to_string(),
            attempts: JITTERS.len(),
        })
    }

    /// Posterior mean and variance at `x` (in original y units).
    fn predict(&self, x: [f64; 2]) -> (f64, f64) {
        let kstar: Vec<f64> = self
            .xs
            .iter()
            .map(|&xi| rbf(xi, x, self.length_scale))
            .collect();
        let mu_n: f64 = kstar
            .iter()
            .zip(self.alpha.iter())
            .map(|(a, b)| a * b)
            .sum();
        // v = L⁻¹ k*; var = k(x,x) − vᵀv
        let v = forward_sub(&self.chol, self.n, &kstar);
        let var_n = (1.0 - v.iter().map(|z| z * z).sum::<f64>()).max(0.0);
        (
            mu_n * self.y_std + self.y_mean,
            var_n * self.y_std * self.y_std,
        )
    }
}

fn rbf(a: [f64; 2], b: [f64; 2], l: f64) -> f64 {
    let d2 = (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2);
    (-d2 / (2.0 * l * l)).exp()
}

/// Dense lower-triangular Cholesky of a positive-definite matrix. A
/// non-positive pivot (the matrix is singular or indefinite — e.g. the
/// kernel matrix of duplicate sampled tiles) is a typed
/// [`DefconError::NotPositiveDefinite`], not a panic or a NaN factor.
///
/// Fault point `autotune.cholesky` injects a pivot failure for
/// degradation tests (jitter escalation, random-search fallback).
fn cholesky(k: &[f64], n: usize) -> Result<Vec<f64>, DefconError> {
    if fault::fires("autotune.cholesky") {
        return Err(DefconError::NotPositiveDefinite {
            pivot: 0,
            value: f64::NEG_INFINITY, // sentinel: injected, not computed
        });
    }
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = k[i * n + j];
            for m in 0..j {
                s -= l[i * n + m] * l[j * n + m];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(DefconError::NotPositiveDefinite { pivot: i, value: s });
                }
                l[i * n + i] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    Ok(l)
}

/// Solves `L y = b` (forward substitution).
fn forward_sub(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[i * n + j] * y[j];
        }
        y[i] = s / l[i * n + i];
    }
    y
}

/// Solves `(L Lᵀ) x = b`.
fn chol_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let y = forward_sub(l, n, b);
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for j in i + 1..n {
            s -= l[j * n + i] * x[j];
        }
        x[i] = s / l[i * n + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic objective with a unique optimum at 8×32.
    fn bowl(t: TileConfig) -> f64 {
        let f = features(t);
        (f[0] - 3.0).powi(2) + (f[1] - 5.0).powi(2) + 1.0
    }

    #[test]
    fn exhaustive_finds_global_optimum() {
        let space = TileConfig::search_space();
        let tuner = Autotuner {
            strategy: Strategy::Exhaustive,
            budget: 0,
            seed: 0,
        };
        let r = tuner.run(&space, bowl);
        assert_eq!(r.best, TileConfig { h: 8, w: 32 });
        assert_eq!(r.evaluations.len(), space.len());
    }

    #[test]
    fn bayesian_matches_exhaustive_with_half_budget() {
        let _quiet = fault::quiesce();
        let space = TileConfig::search_space();
        let tuner = Autotuner::bayesian(space.len() / 2, 7);
        let r = tuner.run(&space, bowl);
        assert_eq!(r.best, TileConfig { h: 8, w: 32 }, "BO missed the optimum");
        assert!(r.evaluations.len() <= space.len() / 2);
    }

    #[test]
    fn bayesian_beats_or_matches_random_on_average() {
        let _quiet = fault::quiesce();
        let space = TileConfig::search_space();
        let budget = 8;
        let mut bo_total = 0.0;
        let mut rnd_total = 0.0;
        for seed in 0..10u64 {
            bo_total += Autotuner::bayesian(budget, seed)
                .run(&space, bowl)
                .best_value;
            rnd_total += Autotuner {
                strategy: Strategy::Random,
                budget,
                seed,
            }
            .run(&space, bowl)
            .best_value;
        }
        assert!(
            bo_total <= rnd_total + 1e-9,
            "BO {bo_total} vs random {rnd_total}"
        );
    }

    #[test]
    fn gp_interpolates_training_points() {
        let _quiet = fault::quiesce();
        let xs = vec![[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [2.0, 2.0]];
        let ys = vec![1.0, 2.0, 3.0, 0.5];
        let gp = Gp::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            let (mu, var) = gp.predict(*x);
            assert!((mu - y).abs() < 0.05, "GP mean {mu} vs observed {y}");
            assert!(
                var < 0.05,
                "posterior variance at a training point should collapse: {var}"
            );
        }
    }

    #[test]
    fn gp_uncertainty_grows_away_from_data() {
        let _quiet = fault::quiesce();
        let xs = vec![[0.0, 0.0], [1.0, 1.0]];
        let ys = vec![1.0, 2.0];
        let gp = Gp::fit(&xs, &ys).unwrap();
        let (_, var_near) = gp.predict([0.1, 0.1]);
        let (_, var_far) = gp.predict([6.0, 6.0]);
        assert!(var_far > var_near);
    }

    #[test]
    fn cholesky_rejects_degenerate_kernel_matrices() {
        let _quiet = fault::quiesce();
        // Singular: the kernel matrix of two duplicate sampled tiles
        // (identical rows) — the case that used to panic mid-tuning.
        let dup = [1.0, 1.0, 1.0, 1.0];
        let err = cholesky(&dup, 2).unwrap_err();
        assert!(matches!(
            err,
            DefconError::NotPositiveDefinite { pivot: 1, .. }
        ));
        assert!(err.is_degradable());
        // Indefinite.
        let indef = [1.0, 2.0, 2.0, 1.0];
        assert!(cholesky(&indef, 2).is_err());
        // Well-conditioned still factors.
        let ok = cholesky(&[4.0, 2.0, 2.0, 3.0], 2).unwrap();
        assert!((ok[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gp_fit_recovers_from_transient_cholesky_failure_via_jitter() {
        use defcon_support::fault::{FaultPlan, Schedule};
        let xs = vec![[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]];
        let ys = vec![1.0, 2.0, 3.0];
        // First factorization attempt fails (injected); the 1e-3-jitter
        // retry succeeds and the fit still interpolates.
        let _g = fault::arm(FaultPlan::new(13).point("autotune.cholesky", Schedule::Nth(0)));
        let gp = Gp::fit(&xs, &ys).unwrap();
        assert_eq!(fault::log(), vec!["autotune.cholesky#0"]);
        for (x, y) in xs.iter().zip(ys.iter()) {
            let (mu, _) = gp.predict(*x);
            assert!((mu - y).abs() < 0.1, "jittered GP mean {mu} vs {y}");
        }
    }

    #[test]
    fn gp_fit_exhausts_jitter_into_typed_error() {
        use defcon_support::fault::{FaultPlan, Schedule};
        let _g = fault::arm(FaultPlan::new(13).point("autotune.cholesky", Schedule::Always));
        let err = Gp::fit(&[[0.0, 0.0]], &[1.0]).unwrap_err();
        assert!(matches!(
            err,
            DefconError::RetriesExhausted { attempts: 4, .. }
        ));
    }

    #[test]
    fn bayesian_degrades_to_random_search_when_gp_unfittable() {
        use defcon_support::fault::{FaultPlan, Schedule};
        let space = TileConfig::search_space();
        let budget = 8;
        let run = || {
            let _g = fault::arm(FaultPlan::new(5).point("autotune.cholesky", Schedule::Always));
            Autotuner::bayesian(budget, 3).run(&space, bowl)
        };
        let r = run();
        // The full budget is still spent and a best is produced.
        assert_eq!(r.evaluations.len(), budget);
        assert!(r.best_value.is_finite());
        // The fallback is deterministic: same seed, same evaluations.
        let r2 = run();
        let evals = |r: &AutotuneResult| r.evaluations.clone();
        assert_eq!(evals(&r), evals(&r2));
    }

    #[test]
    fn bayesian_survives_constant_objective() {
        let _quiet = fault::quiesce();
        // A constant objective makes every y identical (zero variance) —
        // the GP must either fit it or degrade, never panic.
        let space = TileConfig::search_space();
        let r = Autotuner::bayesian(6, 11).run(&space, |_| 2.5);
        assert_eq!(r.evaluations.len(), 6);
        assert_eq!(r.best_value, 2.5);
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ei_zero_when_certainly_worse() {
        // mu far above best, sigma tiny → no improvement expected.
        assert!(expected_improvement(10.0, 1e-9, 1.0) < 1e-9);
        // mu below best with certainty → improvement = best - mu.
        assert!((expected_improvement(0.5, 0.0, 1.0) - 0.5).abs() < 1e-12);
    }
}
