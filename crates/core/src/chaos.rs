//! Seeded chaos-soak sessions over the serving layer.
//!
//! A chaos session drives a seeded randomized request stream — shapes,
//! devices, ladder rungs, operator families, and deadline budgets all
//! drawn from one `StdRng` — through a [`SimServer`] while a seeded
//! [`FaultPlan`] arms every serving-path fault point with probabilistic
//! schedules. The session then distils everything observable into a
//! [`ChaosSummary`]: the outcome partition, the sorted response contents
//! and their digest, the (sorted) fault log, the breaker transition log,
//! and the cache/admission statistics.
//!
//! The point is the *invariants*, not any particular outcome
//! (DESIGN.md §12):
//!
//! * **None lost** — every submitted request ends as exactly one
//!   response, and every response is `served`, `shed`, or
//!   `deadline_exceeded` (never `failed`: the software floor cannot fail
//!   texture setup, and chaos plans only arm recoverable points).
//! * **Seed determinism** — the same `(seed, requests)` pair produces a
//!   byte-identical summary: response contents, fault log, breaker log.
//! * **Accounting balance** — cache `inserts == len + evictions + drops`
//!   and `hits + misses == lookups`; the outcome counts partition the
//!   request count.
//! * **Legal breaker walks** — the rendered transition log only contains
//!   edges the [`CircuitBreaker`](defcon_support::breaker::CircuitBreaker)
//!   state machine can take, and consecutive transitions of a rung chain
//!   (each edge starts where the previous one ended).
//!
//! Sessions pin `workers: 1`: the `texture.limit` fault point decides by
//! per-point *hit counter* (not a caller-stable index), so its firing
//! pattern is only deterministic when misses simulate in admission order.
//! A plan restricted to owner-thread points ([`FaultPointSet::OwnerOnly`])
//! is schedule-deterministic at any worker count, which is what the soak
//! test uses to cross-check `workers: 1` against `workers: 4`.

use crate::serve::{
    fnv1a64, RequestPolicy, ServeConfig, ServeDevice, ServeOutcome, SimRequest, SimServer,
};
use defcon_kernels::backend::BackendKind;
use defcon_kernels::op::{OpFamily, SamplingMethod};
use defcon_kernels::DeformLayerShape;
use defcon_support::fault::{self, FaultPlan, Schedule};
use defcon_support::json::Json;
use defcon_support::rng::{Rng, SeedableRng, StdRng};

/// Which fault points a session arms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPointSet {
    /// Every serving-path point, including `texture.limit` (hit-counter
    /// keyed — worker-order dependent, so only sound at `workers: 1`).
    All,
    /// Only points consulted on the owner thread in admission order
    /// (`serve.enqueue`, `serve.cache`, `serve.deadline`, `retry.attempt`,
    /// `breaker.trip`) — deterministic at any worker count.
    OwnerOnly,
}

/// One chaos session's shape.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Master seed: request stream and fault plan both derive from it.
    pub seed: u64,
    /// Requests in the session.
    pub requests: usize,
    /// Worker bands for miss simulation (see the module docs: only
    /// [`FaultPointSet::OwnerOnly`] is deterministic above 1).
    pub workers: usize,
    /// Admission-queue capacity (small values exercise overflow shedding
    /// alongside the injected `serve.enqueue` failures).
    pub queue_capacity: usize,
    /// Report-cache capacity (small values exercise eviction).
    pub cache_capacity: usize,
    /// Which fault points to arm.
    pub points: FaultPointSet,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            requests: 200,
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 32,
            points: FaultPointSet::All,
        }
    }
}

/// Everything observable about one finished session, in deterministic
/// form (every `Vec` is either admission-ordered or sorted).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSummary {
    /// The session's [`ChaosConfig::seed`].
    pub seed: u64,
    /// Requests submitted (== responses received).
    pub requests: usize,
    /// Responses per terminal outcome, in [`ServeOutcome`] declaration
    /// order: served, shed, deadline-exceeded, failed.
    pub outcomes: [usize; 4],
    /// Sorted [`SimResponse::content_string`](crate::serve::SimResponse)
    /// set.
    pub contents: Vec<String>,
    /// FNV-1a over the newline-joined sorted contents.
    pub digest: u64,
    /// The armed plan's firing log (sorted, one `point#n` line each).
    pub fault_log: Vec<String>,
    /// The ladder breaker's rendered transition log, in event order.
    pub breaker_log: Vec<String>,
    /// Cache statistics: lookups-side (`hits`, `misses`) and
    /// entries-side (`inserts`, `len`, `evictions`, `drops`).
    pub cache: CacheStats,
    /// Admission statistics: sheds (queue refusals), terminal sheds,
    /// retries, degraded admissions.
    pub admission: AdmissionStats,
}

/// Cache accounting snapshot (see [`ChaosSummary::cache`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub len: usize,
    pub evictions: u64,
    pub drops: u64,
}

/// Admission accounting snapshot (see [`ChaosSummary::admission`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionStats {
    pub sheds: u64,
    pub terminal_sheds: u64,
    pub retries: u64,
    pub degraded_admissions: u64,
    pub deadline_exceeded: u64,
}

/// The seeded request stream for a session: tiny shapes (chaos soaks run
/// hundreds of simulations), both devices, all ladder rungs and operator
/// families, and a deadline mix from unbudgeted through impossible.
pub fn request_stream(seed: u64, n: usize) -> Vec<SimRequest> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E55_1011);
    let shapes = [
        DeformLayerShape::same3x3(2, 2, 8, 8),
        DeformLayerShape::same3x3(4, 4, 8, 8),
        DeformLayerShape::same3x3(4, 8, 6, 6),
        DeformLayerShape::same3x3(8, 8, 6, 6),
    ];
    let devices = ServeDevice::all();
    let families = SamplingMethod::ladder();
    let ops = OpFamily::all();
    (0..n)
        .map(|_| SimRequest {
            device: devices[rng.gen_range(0..devices.len())],
            layer: shapes[rng.gen_range(0..shapes.len())],
            kernel_family: families[rng.gen_range(0..families.len())],
            op_family: ops[rng.gen_range(0..ops.len())],
            backend: BackendKind::Gpusim,
            policy: RequestPolicy {
                max_blocks: 16,
                seed: rng.gen_range(0u64..3),
                deadline_cycles: match rng.gen_range(0u32..8) {
                    // Mostly unbudgeted; the budgeted tail spans verdicts
                    // that trip at admission, mid-simulation, and never.
                    0 => 1,
                    1 => rng.gen_range(50_000u64..5_000_000),
                    2 => u64::MAX / 2,
                    _ => 0,
                },
                ..RequestPolicy::default()
            },
        })
        .collect()
}

/// The session's fault plan: every point a serving request can cross,
/// armed with seeded Bernoulli schedules aggressive enough that a
/// 200-request session exercises shedding, retry exhaustion, ladder
/// degradation, breaker trips, and forced deadline verdicts.
pub fn fault_plan(seed: u64, points: FaultPointSet) -> FaultPlan {
    let plan = FaultPlan::new(seed)
        .point("serve.enqueue", Schedule::Prob(0.20))
        .point("serve.cache", Schedule::Prob(0.10))
        .point("serve.deadline", Schedule::Prob(0.10))
        .point("retry.attempt", Schedule::Prob(0.50))
        .point("breaker.trip", Schedule::Prob(0.04));
    match points {
        FaultPointSet::OwnerOnly => plan,
        FaultPointSet::All => plan.point("texture.limit", Schedule::Prob(0.15)),
    }
}

/// Runs one session: arms the plan, serves the stream, and summarizes.
///
/// Panics if the server loses a request (fewer responses than requests)
/// — that invariant is checked here rather than left to callers because
/// a lost request would silently skew every downstream count.
pub fn run_session(cfg: &ChaosConfig) -> ChaosSummary {
    let stream = request_stream(cfg.seed, cfg.requests);
    let armed = fault::arm(fault_plan(cfg.seed, cfg.points));
    let mut server = SimServer::new(ServeConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        cache_capacity: cfg.cache_capacity,
        ..ServeConfig::default()
    });
    let responses = server.serve(&stream);
    assert_eq!(
        responses.len(),
        stream.len(),
        "chaos session lost a request"
    );
    let fault_log = fault::log();
    drop(armed);

    let mut outcomes = [0usize; 4];
    for r in &responses {
        let i = match r.outcome {
            ServeOutcome::Served => 0,
            ServeOutcome::Shed => 1,
            ServeOutcome::DeadlineExceeded => 2,
            ServeOutcome::Failed => 3,
        };
        outcomes[i] += 1;
    }
    let mut contents: Vec<String> = responses.iter().map(|r| r.content_string()).collect();
    contents.sort();
    let digest = fnv1a64(contents.join("\n").as_bytes());
    let cache = server.cache();
    ChaosSummary {
        seed: cfg.seed,
        requests: cfg.requests,
        outcomes,
        digest,
        fault_log,
        breaker_log: server.breaker().log().to_vec(),
        cache: CacheStats {
            hits: cache.hits(),
            misses: cache.misses(),
            inserts: cache.inserts(),
            len: cache.len(),
            evictions: cache.evictions(),
            drops: cache.drops(),
        },
        admission: AdmissionStats {
            sheds: server.sheds(),
            terminal_sheds: server.terminal_sheds(),
            retries: server.retries(),
            degraded_admissions: server.degraded_admissions(),
            deadline_exceeded: server.deadline_exceeded(),
        },
        contents,
    }
}

impl ChaosSummary {
    /// The summary as canonical JSON — what `repro_chaos` writes, and
    /// what CI `cmp`s across two runs of the same seed.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::str(format!("{:016x}", self.seed))),
            ("requests", Json::from(self.requests)),
            ("served", Json::from(self.outcomes[0])),
            ("shed", Json::from(self.outcomes[1])),
            ("deadline_exceeded", Json::from(self.outcomes[2])),
            ("failed", Json::from(self.outcomes[3])),
            ("digest", Json::str(format!("{:016x}", self.digest))),
            (
                "fault_log",
                Json::Arr(self.fault_log.iter().map(Json::str).collect()),
            ),
            (
                "breaker_log",
                Json::Arr(self.breaker_log.iter().map(Json::str).collect()),
            ),
            ("cache_hits", Json::from(self.cache.hits)),
            ("cache_misses", Json::from(self.cache.misses)),
            ("cache_inserts", Json::from(self.cache.inserts)),
            ("cache_len", Json::from(self.cache.len)),
            ("cache_evictions", Json::from(self.cache.evictions)),
            ("cache_drops", Json::from(self.cache.drops)),
            ("sheds", Json::from(self.admission.sheds)),
            ("terminal_sheds", Json::from(self.admission.terminal_sheds)),
            ("retries", Json::from(self.admission.retries)),
            (
                "degraded_admissions",
                Json::from(self.admission.degraded_admissions),
            ),
            (
                "deadline_exceeded_count",
                Json::from(self.admission.deadline_exceeded),
            ),
        ])
    }

    /// Checks every per-session invariant (see the module docs), panicking
    /// with a labelled message on the first violation.
    pub fn assert_invariants(&self) {
        let total: usize = self.outcomes.iter().sum();
        assert_eq!(
            total, self.requests,
            "outcomes must partition the request count"
        );
        assert_eq!(
            self.outcomes[3], 0,
            "no request may terminate Failed under a recoverable plan"
        );
        assert_eq!(self.contents.len(), self.requests, "none lost");
        assert_eq!(
            self.cache.inserts,
            self.cache.len as u64 + self.cache.evictions + self.cache.drops,
            "cache entries must balance: inserts == len + evictions + drops"
        );
        assert_breaker_log_legal(&self.breaker_log);
    }
}

/// Asserts every line of a rendered breaker transition log is a legal
/// state-machine edge and that each rung's edges chain (every transition
/// starts in the state the previous one ended in).
pub fn assert_breaker_log_legal(log: &[String]) {
    // rung name → current state (every rung starts closed).
    let mut state: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
    // The recordable edges of `defcon_support::breaker::step` (self-loops
    // are never logged; closed->open is only reachable via a synthesized
    // or injected trip).
    const LEGAL: [(&str, &str, &str); 5] = [
        ("closed", "open", "trip"),
        ("open", "half-open", "cooldown"),
        ("half-open", "closed", "success"),
        ("half-open", "open", "failure"),
        ("half-open", "open", "trip"),
    ];
    for line in log {
        // "tex2D:closed->open:trip"
        let (rung, edge) = line.split_once(':').expect("rung-prefixed edge");
        let (from_to, cause) = edge.rsplit_once(':').expect("cause-suffixed edge");
        let (from, to) = from_to.split_once("->").expect("from->to edge");
        assert!(
            LEGAL.contains(&(from, to, cause)),
            "illegal breaker edge: {line}"
        );
        let cur = state.entry(rung).or_insert("closed");
        assert_eq!(
            *cur, from,
            "breaker edge does not chain from the previous state: {line}"
        );
        *cur = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_seed_deterministic_and_mixed() {
        let a = request_stream(9, 64);
        assert_eq!(a, request_stream(9, 64));
        assert_ne!(a, request_stream(10, 64));
        assert!(a.iter().any(|r| r.policy.deadline_cycles == 0));
        assert!(a.iter().any(|r| r.policy.deadline_cycles == 1));
        assert!(a
            .iter()
            .any(|r| r.kernel_family != SamplingMethod::SoftwareBilinear));
    }

    #[test]
    fn breaker_log_checker_accepts_legal_and_rejects_illegal() {
        assert_breaker_log_legal(&[
            "tex2D:closed->open:trip".into(),
            "tex2D++:closed->open:trip".into(),
            "tex2D:open->half-open:cooldown".into(),
            "tex2D:half-open->closed:success".into(),
            "tex2D++:open->half-open:cooldown".into(),
            "tex2D++:half-open->open:failure".into(),
        ]);
        let illegal = std::panic::catch_unwind(|| {
            assert_breaker_log_legal(&["tex2D:closed->half-open:trip".into()])
        });
        assert!(illegal.is_err());
        let broken_chain = std::panic::catch_unwind(|| {
            assert_breaker_log_legal(&["tex2D:open->half-open:cooldown".into()])
        });
        assert!(broken_chain.is_err());
    }

    #[test]
    fn tiny_session_holds_its_invariants() {
        let cfg = ChaosConfig {
            seed: 0xA11CE,
            requests: 24,
            ..ChaosConfig::default()
        };
        let s = run_session(&cfg);
        s.assert_invariants();
        assert_eq!(s, run_session(&cfg), "same seed, same summary");
    }
}
