//! Gradient-based interval search (paper Algorithm 1).
//!
//! The search trains a *dual-path supernet* — every candidate 3×3 slot
//! holds both a regular convolution and a DCN, mixed by Gumbel-Softmax over
//! a two-element architecture parameter `[α⁰, α¹]` (Eq. 5) — while adding
//! the latency penalty `β · |Σ ⌈α¹>α⁰⌋ · α¹ · t(w) − T|²` (Eq. 6). After
//! the search epochs, each slot is frozen to the operator with the larger
//! α, and the resulting architecture is fine-tuned.
//!
//! The driver is generic over [`SearchModel`] so the same algorithm runs on
//! the real detector supernet in `defcon-models` and on small synthetic
//! models in tests.

use crate::lut::{LatencyKey, LatencyLut};
use defcon_nn::graph::{ParamId, ParamStore, Tape, Var};
use defcon_nn::gumbel::TemperatureSchedule;
use defcon_nn::modules::LayerChoice;
use defcon_nn::ops;
use defcon_nn::optim::Sgd;

/// What the search needs from a supernet.
pub trait SearchModel {
    /// Number of dual-path slots.
    fn num_slots(&self) -> usize;

    /// Architecture parameter of slot `i` (shape `[2]`: `[α⁰, α¹]`).
    fn alpha(&self, i: usize) -> ParamId;

    /// Latency-LUT key of slot `i`.
    fn latency_key(&self, i: usize) -> LatencyKey;

    /// Sets the Gumbel-Softmax temperature for the coming epoch.
    fn set_temperature(&mut self, tau: f32);

    /// Records one training forward pass for mini-batch `batch` and returns
    /// the task loss Var. The model must register its α parameters on the
    /// tape (they are when the dual-path layers run un-frozen).
    fn forward_loss(&mut self, tape: &mut Tape, store: &ParamStore, batch: usize) -> Var;

    /// Freezes every slot to its current α decision; returns the choices.
    fn freeze(&mut self, store: &ParamStore) -> Vec<LayerChoice>;
}

/// Search hyper-parameters.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Search epochs (supernet training with the latency penalty).
    pub search_epochs: usize,
    /// Fine-tuning epochs after freezing.
    pub finetune_epochs: usize,
    /// Mini-batches per epoch.
    pub iters_per_epoch: usize,
    /// Penalty weight β (Eq. 4).
    pub beta: f32,
    /// Target latency `T` in milliseconds (Eq. 6).
    pub target_latency_ms: f32,
    /// Temperature annealing for the Gumbel-Softmax.
    pub temperature: TemperatureSchedule,
    /// Optimizer learning rate.
    pub lr: f32,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            search_epochs: 6,
            finetune_epochs: 4,
            iters_per_epoch: 8,
            beta: 1.0,
            target_latency_ms: 0.0,
            temperature: TemperatureSchedule::standard(),
            lr: 0.05,
        }
    }
}

/// The outcome of a search run.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Per-slot operator decision.
    pub choices: Vec<LayerChoice>,
    /// Task loss measured on the last fine-tuning iteration.
    pub final_loss: f32,
    /// Estimated DCN latency overhead of the chosen architecture (Σ t(w)
    /// over deformable slots), milliseconds.
    pub dcn_overhead_ms: f64,
    /// Task-loss trajectory (one value per epoch, search then fine-tune).
    pub loss_history: Vec<f32>,
}

impl SearchOutcome {
    /// Number of slots that chose the deformable operator.
    pub fn num_dcn(&self) -> usize {
        self.choices
            .iter()
            .filter(|&&c| c == LayerChoice::Deformable)
            .count()
    }

    /// Compact layout string, e.g. `".D..D"` (Fig. 6 style).
    pub fn layout(&self) -> String {
        self.choices
            .iter()
            .map(|c| {
                if *c == LayerChoice::Deformable {
                    'D'
                } else {
                    '.'
                }
            })
            .collect()
    }
}

/// The interval-search driver.
pub struct IntervalSearch {
    /// Hyper-parameters.
    pub config: SearchConfig,
    /// Latency table providing `t(w_n)`.
    pub lut: LatencyLut,
}

impl IntervalSearch {
    /// Builds a driver from a config and a pre-collected LUT.
    pub fn new(config: SearchConfig, lut: LatencyLut) -> Self {
        IntervalSearch { config, lut }
    }

    /// Runs Algorithm 1 on `model`, updating `store` in place.
    pub fn run<M: SearchModel>(&self, model: &mut M, store: &mut ParamStore) -> SearchOutcome {
        let lat: Vec<f32> = (0..model.num_slots())
            .map(|i| self.lut.dcn_overhead_ms(&model.latency_key(i)) as f32)
            .collect();
        let mut opt = Sgd::new(self.config.lr, 0.9, 0.0);
        let mut loss_history = Vec::new();

        // --- Interval search phase (Algorithm 1, top loop). ---
        for epoch in 0..self.config.search_epochs {
            model.set_temperature(self.config.temperature.at(epoch));
            let mut epoch_loss = 0.0f32;
            for iter in 0..self.config.iters_per_epoch {
                store.zero_grads();
                let mut tape = Tape::new();
                let task = model.forward_loss(
                    &mut tape,
                    store,
                    epoch * self.config.iters_per_epoch + iter,
                );
                let alphas: Vec<Var> = (0..model.num_slots())
                    .map(|i| tape.param(store, model.alpha(i)))
                    .collect();
                let penalty =
                    ops::latency_penalty(&mut tape, &alphas, &lat, self.config.target_latency_ms);
                let weighted = ops::scale(&mut tape, penalty, self.config.beta);
                let total = ops::add(&mut tape, task, weighted);
                epoch_loss += tape.value(task).data()[0];
                tape.backward(total);
                tape.write_param_grads(store);
                opt.step(store);
            }
            loss_history.push(epoch_loss / self.config.iters_per_epoch as f32);
        }

        // --- Select layer type by the magnitude of α. ---
        let choices = model.freeze(store);
        let dcn_overhead_ms: f64 = choices
            .iter()
            .zip(lat.iter())
            .filter(|(c, _)| **c == LayerChoice::Deformable)
            .map(|(_, &t)| t as f64)
            .sum();

        // --- Fine-tune the result architecture (Algorithm 1, bottom loop). ---
        let mut final_loss = f32::NAN;
        for epoch in 0..self.config.finetune_epochs {
            let mut epoch_loss = 0.0f32;
            for iter in 0..self.config.iters_per_epoch {
                store.zero_grads();
                let mut tape = Tape::new();
                let task = model.forward_loss(
                    &mut tape,
                    store,
                    epoch * self.config.iters_per_epoch + iter,
                );
                final_loss = tape.value(task).data()[0];
                epoch_loss += final_loss;
                tape.backward(task);
                tape.write_param_grads(store);
                opt.step(store);
            }
            loss_history.push(epoch_loss / self.config.iters_per_epoch as f32);
        }

        SearchOutcome {
            choices,
            final_loss,
            dcn_overhead_ms,
            loss_history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_gpusim::{DeviceConfig, Gpu};
    use defcon_kernels::op::{OffsetPredictorKind, SamplingMethod};
    use defcon_nn::loss;
    use defcon_nn::modules::{DualPathConv, Module};
    use defcon_tensor::sample::DeformConv2dParams;
    use defcon_tensor::Tensor;

    /// A 2-slot synthetic supernet on a task where *deformation helps*:
    /// the target is the input sampled at a constant spatial shift, which a
    /// DCN can express exactly and a rigid 3×3 conv cannot.
    struct ToyNet {
        slots: Vec<DualPathConv>,
        data: Vec<(Tensor, Tensor)>,
    }

    impl ToyNet {
        fn new(store: &mut ParamStore) -> Self {
            let p = DeformConv2dParams::same3x3();
            let slots = vec![
                DualPathConv::new(store, "s0", 1, 1, p, true, 1),
                DualPathConv::new(store, "s1", 1, 1, p, true, 2),
            ];
            // Target: identity shifted by (2, 1) — outside a 3x3 receptive
            // field for a single layer.
            let mut data = Vec::new();
            for seed in 0..4u64 {
                let x = Tensor::rand_uniform(&[1, 1, 8, 8], 0.0, 1.0, 100 + seed);
                let mut y = Tensor::zeros(&[1, 1, 8, 8]);
                for yy in 0..8usize {
                    for xx in 0..8usize {
                        let (sy, sx) = (yy + 2, xx + 1);
                        if sy < 8 && sx < 8 {
                            *y.at4_mut(0, 0, yy, xx) = x.at4(0, 0, sy, sx);
                        }
                    }
                }
                data.push((x, y));
            }
            ToyNet { slots, data }
        }
    }

    impl SearchModel for ToyNet {
        fn num_slots(&self) -> usize {
            self.slots.len()
        }
        fn alpha(&self, i: usize) -> ParamId {
            self.slots[i].alpha
        }
        fn latency_key(&self, _i: usize) -> LatencyKey {
            LatencyKey {
                c_in: 16,
                c_out: 16,
                h: 16,
                w: 16,
                stride: 1,
            }
        }
        fn set_temperature(&mut self, tau: f32) {
            for s in &mut self.slots {
                s.tau = tau;
            }
        }
        fn forward_loss(&mut self, tape: &mut Tape, store: &ParamStore, batch: usize) -> Var {
            let (x, y) = &self.data[batch % self.data.len()];
            let mut h = tape.input(x.clone());
            for s in &mut self.slots {
                h = s.forward(tape, store, h);
            }
            loss::mse(tape, h, y)
        }
        fn freeze(&mut self, store: &ParamStore) -> Vec<LayerChoice> {
            self.slots.iter_mut().map(|s| s.freeze(store)).collect()
        }
    }

    fn tiny_lut() -> LatencyLut {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        LatencyLut::build(
            &gpu,
            &[LatencyKey {
                c_in: 16,
                c_out: 16,
                h: 16,
                w: 16,
                stride: 1,
            }],
            SamplingMethod::SoftwareBilinear,
            OffsetPredictorKind::Standard,
        )
    }

    #[test]
    fn search_runs_and_freezes() {
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let cfg = SearchConfig {
            search_epochs: 3,
            finetune_epochs: 2,
            iters_per_epoch: 4,
            ..Default::default()
        };
        let search = IntervalSearch::new(cfg, tiny_lut());
        let out = search.run(&mut net, &mut store);
        assert_eq!(out.choices.len(), 2);
        assert_eq!(out.loss_history.len(), 5);
        assert_eq!(out.layout().len(), 2);
        // After freezing, the DCN overhead is the sum over chosen slots.
        let per_slot = search.lut.dcn_overhead_ms(&net.latency_key(0));
        assert!((out.dcn_overhead_ms - per_slot * out.num_dcn() as f64).abs() < 1e-9);
    }

    #[test]
    fn loss_improves_over_search() {
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let cfg = SearchConfig {
            search_epochs: 6,
            finetune_epochs: 6,
            iters_per_epoch: 8,
            lr: 0.1,
            ..Default::default()
        };
        let search = IntervalSearch::new(cfg, tiny_lut());
        let out = search.run(&mut net, &mut store);
        let first = out.loss_history[0];
        let last = *out.loss_history.last().unwrap();
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn tight_latency_budget_suppresses_dcns() {
        // With a zero-latency target and a huge β, the penalty should push
        // α¹ below α⁰ everywhere → no deformable layers survive.
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let cfg = SearchConfig {
            search_epochs: 8,
            finetune_epochs: 1,
            iters_per_epoch: 6,
            // β must dominate the task gradient given the small per-layer
            // t(w) of this toy LUT (the penalty scales with t²).
            beta: 1e7,
            target_latency_ms: 0.0,
            lr: 0.05,
            ..Default::default()
        };
        let search = IntervalSearch::new(cfg, tiny_lut());
        let out = search.run(&mut net, &mut store);
        assert_eq!(out.num_dcn(), 0, "layout {}", out.layout());
    }

    #[test]
    fn loose_budget_lets_dcns_win_on_deformed_task() {
        // With no pressure (β=0) on a task built around spatial shift, at
        // least one slot should pick the deformable path.
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let cfg = SearchConfig {
            search_epochs: 10,
            finetune_epochs: 1,
            iters_per_epoch: 8,
            beta: 0.0,
            lr: 0.1,
            ..Default::default()
        };
        let search = IntervalSearch::new(cfg, tiny_lut());
        let out = search.run(&mut net, &mut store);
        assert!(
            out.num_dcn() >= 1,
            "expected DCN to win somewhere, layout {}",
            out.layout()
        );
    }
}
