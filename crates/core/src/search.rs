//! Gradient-based interval search (paper Algorithm 1).
//!
//! The search trains a *dual-path supernet* — every candidate 3×3 slot
//! holds both a regular convolution and a DCN, mixed by Gumbel-Softmax over
//! a two-element architecture parameter `[α⁰, α¹]` (Eq. 5) — while adding
//! the latency penalty `β · |Σ ⌈α¹>α⁰⌋ · α¹ · t(w) − T|²` (Eq. 6). After
//! the search epochs, each slot is frozen to the operator with the larger
//! α, and the resulting architecture is fine-tuned.
//!
//! The driver is generic over [`SearchModel`] so the same algorithm runs on
//! the real detector supernet in `defcon-models` and on small synthetic
//! models in tests.

use crate::lut::{LatencyKey, LatencyLut};
use defcon_nn::graph::{ParamId, ParamStore, Tape, Var};
use defcon_nn::gumbel::TemperatureSchedule;
use defcon_nn::modules::LayerChoice;
use defcon_nn::ops;
use defcon_nn::optim::Sgd;
use defcon_support::ckpt;
use defcon_support::error::DefconError;
use defcon_support::fault;
use defcon_support::json::{Json, JsonError};
use defcon_support::obs;
use defcon_tensor::Tensor;
use std::path::PathBuf;

/// What the search needs from a supernet.
pub trait SearchModel {
    /// Number of dual-path slots.
    fn num_slots(&self) -> usize;

    /// Architecture parameter of slot `i` (shape `[2]`: `[α⁰, α¹]`).
    fn alpha(&self, i: usize) -> ParamId;

    /// Latency-LUT key of slot `i`.
    fn latency_key(&self, i: usize) -> LatencyKey;

    /// Sets the Gumbel-Softmax temperature for the coming epoch.
    fn set_temperature(&mut self, tau: f32);

    /// Records one training forward pass for mini-batch `batch` and returns
    /// the task loss Var. The model must register its α parameters on the
    /// tape (they are when the dual-path layers run un-frozen).
    fn forward_loss(&mut self, tape: &mut Tape, store: &ParamStore, batch: usize) -> Var;

    /// Freezes every slot to its current α decision; returns the choices.
    fn freeze(&mut self, store: &ParamStore) -> Vec<LayerChoice>;
}

/// Search hyper-parameters.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Search epochs (supernet training with the latency penalty).
    pub search_epochs: usize,
    /// Fine-tuning epochs after freezing.
    pub finetune_epochs: usize,
    /// Mini-batches per epoch.
    pub iters_per_epoch: usize,
    /// Penalty weight β (Eq. 4).
    pub beta: f32,
    /// Target latency `T` in milliseconds (Eq. 6).
    pub target_latency_ms: f32,
    /// Temperature annealing for the Gumbel-Softmax.
    pub temperature: TemperatureSchedule,
    /// Optimizer learning rate.
    pub lr: f32,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            search_epochs: 6,
            finetune_epochs: 4,
            iters_per_epoch: 8,
            beta: 1.0,
            target_latency_ms: 0.0,
            temperature: TemperatureSchedule::standard(),
            lr: 0.05,
        }
    }
}

/// Robustness knobs for [`IntervalSearch::run_robust`].
#[derive(Clone, Debug)]
pub struct RobustSearchConfig {
    /// Where to checkpoint after every epoch (atomic write + CRC). `None`
    /// disables checkpointing. On start, an existing valid checkpoint at
    /// this path is resumed; a corrupt/truncated one is discarded and the
    /// run restarts from scratch (deterministic models then reproduce the
    /// uninterrupted run exactly).
    pub checkpoint: Option<PathBuf>,
    /// How many times one step may be retried after a non-finite
    /// loss/gradient before the run fails with
    /// [`DefconError::RetriesExhausted`].
    pub max_step_retries: usize,
    /// LR backoff factor applied (multiplicatively, via [`Sgd::backoff`])
    /// on every rollback.
    pub lr_backoff: f32,
}

impl Default for RobustSearchConfig {
    fn default() -> Self {
        RobustSearchConfig {
            checkpoint: None,
            max_step_retries: 3,
            lr_backoff: 0.5,
        }
    }
}

/// The outcome of a search run.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Per-slot operator decision.
    pub choices: Vec<LayerChoice>,
    /// Task loss measured on the last fine-tuning iteration.
    pub final_loss: f32,
    /// Estimated DCN latency overhead of the chosen architecture (Σ t(w)
    /// over deformable slots), milliseconds.
    pub dcn_overhead_ms: f64,
    /// Task-loss trajectory (one value per epoch, search then fine-tune).
    pub loss_history: Vec<f32>,
}

impl SearchOutcome {
    /// Number of slots that chose the deformable operator.
    pub fn num_dcn(&self) -> usize {
        self.choices
            .iter()
            .filter(|&&c| c == LayerChoice::Deformable)
            .count()
    }

    /// Compact layout string, e.g. `".D..D"` (Fig. 6 style).
    pub fn layout(&self) -> String {
        self.choices
            .iter()
            .map(|c| {
                if *c == LayerChoice::Deformable {
                    'D'
                } else {
                    '.'
                }
            })
            .collect()
    }
}

/// The interval-search driver.
pub struct IntervalSearch {
    /// Hyper-parameters.
    pub config: SearchConfig,
    /// Latency table providing `t(w_n)`.
    pub lut: LatencyLut,
}

impl IntervalSearch {
    /// Builds a driver from a config and a pre-collected LUT.
    pub fn new(config: SearchConfig, lut: LatencyLut) -> Self {
        IntervalSearch { config, lut }
    }

    /// Runs Algorithm 1 on `model`, updating `store` in place.
    ///
    /// Thin wrapper over [`IntervalSearch::run_robust`] with the default
    /// robustness knobs (no checkpointing); when no step ever produces a
    /// non-finite loss or gradient the arithmetic is identical to the
    /// historical unguarded loop.
    pub fn run<M: SearchModel>(&self, model: &mut M, store: &mut ParamStore) -> SearchOutcome {
        self.run_robust(model, store, &RobustSearchConfig::default())
            .expect("interval search could not recover from non-finite steps")
    }

    /// Algorithm 1 with graceful degradation:
    ///
    /// - every optimization step is guarded: a non-finite task loss or any
    ///   non-finite parameter gradient rolls the store back to the
    ///   pre-step snapshot, backs off the learning rate
    ///   ([`Sgd::backoff`]), and retries, up to
    ///   `robust.max_step_retries` extra attempts before surfacing
    ///   [`DefconError::RetriesExhausted`];
    /// - with `robust.checkpoint` set, the full optimization state is
    ///   written atomically (CRC-framed) after every epoch, and an
    ///   existing valid checkpoint is resumed from; a corrupt or
    ///   truncated checkpoint is discarded and the run restarts from
    ///   scratch.
    ///
    /// Resume replays nothing: completed epochs are skipped and training
    /// continues from the stored parameters, momentum, and LR schedule.
    /// For models whose `forward_loss` is a pure function of
    /// `(store, batch, temperature)` this makes a resumed run
    /// byte-identical to an uninterrupted one; models holding private RNG
    /// state (e.g. Gumbel noise streams) resume correctly but reproduce
    /// the uninterrupted trajectory only up to that noise.
    pub fn run_robust<M: SearchModel>(
        &self,
        model: &mut M,
        store: &mut ParamStore,
        robust: &RobustSearchConfig,
    ) -> Result<SearchOutcome, DefconError> {
        let run_span = obs::span_with("search.run", || {
            vec![
                ("slots", Json::from(model.num_slots())),
                ("search_epochs", Json::from(self.config.search_epochs)),
                ("finetune_epochs", Json::from(self.config.finetune_epochs)),
                (
                    "target_latency_ms",
                    Json::from(self.config.target_latency_ms as f64),
                ),
                ("beta", Json::from(self.config.beta as f64)),
            ]
        });
        let lat: Vec<f32> = (0..model.num_slots())
            .map(|i| self.lut.dcn_overhead_ms(&model.latency_key(i)) as f32)
            .collect();
        let mut opt = Sgd::new(self.config.lr, 0.9, 0.0);
        let mut loss_history: Vec<f32> = Vec::new();
        let mut final_loss = f32::NAN;

        // --- Resume from a checkpoint when one is present and intact. ---
        if let Some(path) = &robust.checkpoint {
            if let Some(payload) = ckpt::load_or_discard(path)? {
                let pre = store.snapshot();
                match parse_search_checkpoint(&payload, store) {
                    Ok(state) => {
                        loss_history = state.loss_history;
                        final_loss = state.final_loss;
                        opt.restore_schedule(state.opt_steps, state.opt_lr_scale);
                    }
                    // A CRC-valid but semantically stale checkpoint (e.g.
                    // from a different model) degrades to a fresh start;
                    // the store must not keep a partial load.
                    Err(_) => store.restore(&pre),
                }
            }
        }

        // --- Interval search phase (Algorithm 1, top loop). ---
        for epoch in 0..self.config.search_epochs {
            if loss_history.len() > epoch {
                continue; // resumed past this epoch
            }
            let tau = self.config.temperature.at(epoch);
            model.set_temperature(tau);
            let epoch_span = obs::span_with("search.epoch", || {
                vec![
                    ("epoch", Json::from(epoch)),
                    ("phase", Json::str("search")),
                    ("tau", Json::from(tau as f64)),
                ]
            });
            let mut epoch_loss = 0.0f32;
            for iter in 0..self.config.iters_per_epoch {
                let batch = epoch * self.config.iters_per_epoch + iter;
                epoch_loss +=
                    self.robust_step(model, store, &mut opt, &lat, true, batch, robust)?;
            }
            let mean_loss = epoch_loss / self.config.iters_per_epoch as f32;
            epoch_span.record("loss", Json::from(mean_loss as f64));
            drop(epoch_span);
            loss_history.push(mean_loss);
            self.save_checkpoint(robust, store, &opt, &loss_history, final_loss)?;
        }

        // --- Select layer type by the magnitude of α. ---
        // `freeze` is a pure function of the α values in the store, so a
        // resumed run re-derives the same choices the original would have.
        let choices = model.freeze(store);
        let dcn_overhead_ms: f64 = choices
            .iter()
            .zip(lat.iter())
            .filter(|(c, _)| **c == LayerChoice::Deformable)
            .map(|(_, &t)| t as f64)
            .sum();

        // --- Fine-tune the result architecture (Algorithm 1, bottom loop). ---
        for epoch in 0..self.config.finetune_epochs {
            if loss_history.len() > self.config.search_epochs + epoch {
                continue; // resumed past this epoch
            }
            let epoch_span = obs::span_with("search.epoch", || {
                vec![
                    ("epoch", Json::from(self.config.search_epochs + epoch)),
                    ("phase", Json::str("finetune")),
                ]
            });
            let mut epoch_loss = 0.0f32;
            for iter in 0..self.config.iters_per_epoch {
                let batch = epoch * self.config.iters_per_epoch + iter;
                final_loss =
                    self.robust_step(model, store, &mut opt, &lat, false, batch, robust)?;
                epoch_loss += final_loss;
            }
            let mean_loss = epoch_loss / self.config.iters_per_epoch as f32;
            epoch_span.record("loss", Json::from(mean_loss as f64));
            drop(epoch_span);
            loss_history.push(mean_loss);
            self.save_checkpoint(robust, store, &opt, &loss_history, final_loss)?;
        }

        run_span.record("final_loss", Json::from(final_loss as f64));
        run_span.record("dcn_overhead_ms", Json::from(dcn_overhead_ms));
        Ok(SearchOutcome {
            choices,
            final_loss,
            dcn_overhead_ms,
            loss_history,
        })
    }

    /// One guarded optimization step; returns the task-loss value.
    #[allow(clippy::too_many_arguments)]
    fn robust_step<M: SearchModel>(
        &self,
        model: &mut M,
        store: &mut ParamStore,
        opt: &mut Sgd,
        lat: &[f32],
        with_penalty: bool,
        batch: usize,
        robust: &RobustSearchConfig,
    ) -> Result<f32, DefconError> {
        for attempt in 0..=robust.max_step_retries {
            let snap = store.snapshot();
            store.zero_grads();
            let mut tape = Tape::new();
            let task = model.forward_loss(&mut tape, store, batch);
            let (total, penalty_val) = if with_penalty {
                let alphas: Vec<Var> = (0..model.num_slots())
                    .map(|i| tape.param(store, model.alpha(i)))
                    .collect();
                let penalty =
                    ops::latency_penalty(&mut tape, &alphas, lat, self.config.target_latency_ms);
                let penalty_val = tape.value(penalty).data()[0];
                let weighted = ops::scale(&mut tape, penalty, self.config.beta);
                (ops::add(&mut tape, task, weighted), Some(penalty_val))
            } else {
                (task, None)
            };
            let mut task_val = tape.value(task).data()[0];
            fault::nonfinite_f32("search.loss", &mut task_val);
            if task_val.is_finite() {
                tape.backward(total);
                tape.write_param_grads(store);
                if fault::fires("search.alpha_grad") && model.num_slots() > 0 {
                    // Inject a poisoned α gradient (offset-gradient blow-up
                    // surrogate) for the guard below to catch.
                    let nan = Tensor::from_vec(vec![f32::NAN, f32::NAN], &[2]);
                    store.accumulate_grad(model.alpha(0), &nan);
                }
                if store.grads_finite() {
                    opt.step(store);
                    obs::event_with("search.step", || {
                        let mut args = vec![
                            ("batch", Json::from(batch)),
                            ("task_loss", Json::from(task_val as f64)),
                        ];
                        if let Some(p) = penalty_val {
                            args.push(("lut_penalty", Json::from(p as f64)));
                        }
                        args
                    });
                    return Ok(task_val);
                }
            }
            // Degradation path: the step diverged — roll back parameters and
            // momentum, gear the LR down, and retry the same mini-batch.
            store.restore(&snap);
            opt.backoff(robust.lr_backoff);
            obs::event_with("search.rollback", || {
                vec![
                    ("batch", Json::from(batch)),
                    ("attempt", Json::from(attempt)),
                    ("lr_backoff", Json::from(robust.lr_backoff as f64)),
                ]
            });
        }
        Err(DefconError::RetriesExhausted {
            what: format!("interval-search step on batch {batch} (non-finite loss/gradient)"),
            attempts: robust.max_step_retries + 1,
        })
    }

    /// Writes the post-epoch checkpoint when checkpointing is enabled.
    fn save_checkpoint(
        &self,
        robust: &RobustSearchConfig,
        store: &ParamStore,
        opt: &Sgd,
        loss_history: &[f32],
        final_loss: f32,
    ) -> Result<(), DefconError> {
        let Some(path) = &robust.checkpoint else {
            return Ok(());
        };
        let doc = Json::obj(vec![
            ("epochs_done", Json::from(loss_history.len())),
            (
                "final_loss",
                if final_loss.is_finite() {
                    Json::from(final_loss as f64)
                } else {
                    Json::Null
                },
            ),
            (
                "loss_history",
                Json::Arr(loss_history.iter().map(|&v| Json::from(v as f64)).collect()),
            ),
            ("opt_steps", Json::from(opt.steps())),
            ("opt_lr_scale", Json::from(opt.lr_scale() as f64)),
            ("params", store.state_to_json()),
        ]);
        ckpt::save(path, &doc.to_string())?;
        obs::event_with("search.checkpoint", || {
            vec![("epochs_done", Json::from(loss_history.len()))]
        });
        Ok(())
    }
}

/// Decoded search checkpoint (see [`IntervalSearch::run_robust`]).
struct SearchCheckpoint {
    loss_history: Vec<f32>,
    final_loss: f32,
    opt_steps: usize,
    opt_lr_scale: f32,
}

/// Parses a CRC-valid checkpoint payload and loads the parameter state
/// into `store`. On error the caller must restore `store` from a
/// pre-parse snapshot (the load may have been partial).
fn parse_search_checkpoint(
    payload: &str,
    store: &mut ParamStore,
) -> Result<SearchCheckpoint, JsonError> {
    let doc = Json::parse(payload)?;
    let epochs_done = doc
        .field("epochs_done")?
        .as_usize()
        .ok_or_else(|| JsonError::msg("epochs_done must be a non-negative integer"))?;
    let final_loss = match doc.field("final_loss")? {
        Json::Null => f32::NAN,
        v => v
            .as_f64()
            .ok_or_else(|| JsonError::msg("final_loss must be a number or null"))?
            as f32,
    };
    let hist = doc
        .field("loss_history")?
        .as_arr()
        .ok_or_else(|| JsonError::msg("loss_history must be an array"))?;
    let mut loss_history = Vec::with_capacity(hist.len());
    for v in hist {
        loss_history.push(
            v.as_f64()
                .ok_or_else(|| JsonError::msg("loss_history entries must be numbers"))?
                as f32,
        );
    }
    if loss_history.len() != epochs_done {
        return Err(JsonError::msg("epochs_done disagrees with loss_history"));
    }
    let opt_steps = doc
        .field("opt_steps")?
        .as_usize()
        .ok_or_else(|| JsonError::msg("opt_steps must be a non-negative integer"))?;
    let opt_lr_scale =
        doc.field("opt_lr_scale")?
            .as_f64()
            .ok_or_else(|| JsonError::msg("opt_lr_scale must be a number"))? as f32;
    store.load_state_json(doc.field("params")?)?;
    Ok(SearchCheckpoint {
        loss_history,
        final_loss,
        opt_steps,
        opt_lr_scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_gpusim::{DeviceConfig, Gpu};
    use defcon_kernels::op::{OffsetPredictorKind, SamplingMethod};
    use defcon_nn::loss;
    use defcon_nn::modules::{DualPathConv, Module};
    use defcon_tensor::sample::DeformConv2dParams;
    use defcon_tensor::Tensor;

    /// A 2-slot synthetic supernet on a task where *deformation helps*:
    /// the target is the input sampled at a constant spatial shift, which a
    /// DCN can express exactly and a rigid 3×3 conv cannot.
    struct ToyNet {
        slots: Vec<DualPathConv>,
        data: Vec<(Tensor, Tensor)>,
    }

    impl ToyNet {
        fn new(store: &mut ParamStore) -> Self {
            let p = DeformConv2dParams::same3x3();
            let slots = vec![
                DualPathConv::new(store, "s0", 1, 1, p, true, 1),
                DualPathConv::new(store, "s1", 1, 1, p, true, 2),
            ];
            // Target: identity shifted by (2, 1) — outside a 3x3 receptive
            // field for a single layer.
            let mut data = Vec::new();
            for seed in 0..4u64 {
                let x = Tensor::rand_uniform(&[1, 1, 8, 8], 0.0, 1.0, 100 + seed);
                let mut y = Tensor::zeros(&[1, 1, 8, 8]);
                for yy in 0..8usize {
                    for xx in 0..8usize {
                        let (sy, sx) = (yy + 2, xx + 1);
                        if sy < 8 && sx < 8 {
                            *y.at4_mut(0, 0, yy, xx) = x.at4(0, 0, sy, sx);
                        }
                    }
                }
                data.push((x, y));
            }
            ToyNet { slots, data }
        }
    }

    impl SearchModel for ToyNet {
        fn num_slots(&self) -> usize {
            self.slots.len()
        }
        fn alpha(&self, i: usize) -> ParamId {
            self.slots[i].alpha
        }
        fn latency_key(&self, _i: usize) -> LatencyKey {
            LatencyKey {
                c_in: 16,
                c_out: 16,
                h: 16,
                w: 16,
                stride: 1,
            }
        }
        fn set_temperature(&mut self, tau: f32) {
            for s in &mut self.slots {
                s.tau = tau;
            }
        }
        fn forward_loss(&mut self, tape: &mut Tape, store: &ParamStore, batch: usize) -> Var {
            let (x, y) = &self.data[batch % self.data.len()];
            let mut h = tape.input(x.clone());
            for s in &mut self.slots {
                h = s.forward(tape, store, h);
            }
            loss::mse(tape, h, y)
        }
        fn freeze(&mut self, store: &ParamStore) -> Vec<LayerChoice> {
            self.slots.iter_mut().map(|s| s.freeze(store)).collect()
        }
    }

    fn tiny_lut() -> LatencyLut {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        LatencyLut::build(
            &gpu,
            &[LatencyKey {
                c_in: 16,
                c_out: 16,
                h: 16,
                w: 16,
                stride: 1,
            }],
            SamplingMethod::SoftwareBilinear,
            OffsetPredictorKind::Standard,
        )
    }

    #[test]
    fn search_runs_and_freezes() {
        let _quiet = fault::quiesce();
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let cfg = SearchConfig {
            search_epochs: 3,
            finetune_epochs: 2,
            iters_per_epoch: 4,
            ..Default::default()
        };
        let search = IntervalSearch::new(cfg, tiny_lut());
        let out = search.run(&mut net, &mut store);
        assert_eq!(out.choices.len(), 2);
        assert_eq!(out.loss_history.len(), 5);
        assert_eq!(out.layout().len(), 2);
        // After freezing, the DCN overhead is the sum over chosen slots.
        let per_slot = search.lut.dcn_overhead_ms(&net.latency_key(0));
        assert!((out.dcn_overhead_ms - per_slot * out.num_dcn() as f64).abs() < 1e-9);
    }

    #[test]
    fn loss_improves_over_search() {
        let _quiet = fault::quiesce();
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let cfg = SearchConfig {
            search_epochs: 6,
            finetune_epochs: 6,
            iters_per_epoch: 8,
            lr: 0.1,
            ..Default::default()
        };
        let search = IntervalSearch::new(cfg, tiny_lut());
        let out = search.run(&mut net, &mut store);
        let first = out.loss_history[0];
        let last = *out.loss_history.last().unwrap();
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    /// The search space is operator-family aware: a LUT built with
    /// [`LatencyLut::build_family`] prices each slot with that family's
    /// deformable overhead, so the per-slot `t(w)` the penalty gradient
    /// sees — and the frozen outcome's `dcn_overhead_ms` accounting —
    /// order v1 < v2 < v3 on the texture path.
    #[test]
    fn family_aware_lut_flows_into_the_search_space() {
        use defcon_kernels::op::OpFamily;
        let _quiet = fault::quiesce();
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let key = LatencyKey {
            c_in: 16,
            c_out: 16,
            h: 16,
            w: 16,
            stride: 1,
        };
        let mut overheads = Vec::new();
        for family in OpFamily::all() {
            let lut = LatencyLut::build_family(
                &gpu,
                &[key],
                SamplingMethod::Tex2d,
                OffsetPredictorKind::Standard,
                family,
            );
            let mut store = ParamStore::new();
            let mut net = ToyNet::new(&mut store);
            let search = IntervalSearch::new(small_cfg(), lut);
            let out = search.run(&mut net, &mut store);
            let per_slot = search.lut.dcn_overhead_ms(&net.latency_key(0));
            // The driver prices slots through the f32 `lat` vector, so the
            // accounting identity holds at f32 resolution.
            let priced = (per_slot as f32) as f64;
            assert!(
                (out.dcn_overhead_ms - priced * out.num_dcn() as f64).abs() < 1e-9,
                "{family:?}: overhead accounting must use the family LUT"
            );
            overheads.push(per_slot);
        }
        assert!(
            overheads[0] < overheads[1] && overheads[1] < overheads[2],
            "per-slot t(w) must order v1 < v2 < v3: {overheads:?}"
        );
    }

    #[test]
    fn tight_latency_budget_suppresses_dcns() {
        let _quiet = fault::quiesce();
        // With a zero-latency target and a huge β, the penalty should push
        // α¹ below α⁰ everywhere → no deformable layers survive.
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let cfg = SearchConfig {
            search_epochs: 8,
            finetune_epochs: 1,
            iters_per_epoch: 6,
            // β must dominate the task gradient given the small per-layer
            // t(w) of this toy LUT (the penalty scales with t²).
            beta: 1e7,
            target_latency_ms: 0.0,
            lr: 0.05,
            ..Default::default()
        };
        let search = IntervalSearch::new(cfg, tiny_lut());
        let out = search.run(&mut net, &mut store);
        assert_eq!(out.num_dcn(), 0, "layout {}", out.layout());
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("defcon-search-{}-{}", std::process::id(), name));
        p
    }

    fn small_cfg() -> SearchConfig {
        SearchConfig {
            search_epochs: 2,
            finetune_epochs: 2,
            iters_per_epoch: 3,
            ..Default::default()
        }
    }

    #[test]
    fn run_and_run_robust_agree_bitwise_when_unfaulted() {
        let _quiet = fault::quiesce();
        let mk = || {
            let mut store = ParamStore::new();
            let net = ToyNet::new(&mut store);
            (store, net)
        };
        let search = IntervalSearch::new(small_cfg(), tiny_lut());
        let (mut s1, mut n1) = mk();
        let a = search.run(&mut n1, &mut s1);
        let (mut s2, mut n2) = mk();
        let b = search
            .run_robust(&mut n2, &mut s2, &RobustSearchConfig::default())
            .unwrap();
        assert_eq!(a.loss_history, b.loss_history);
        assert_eq!(a.final_loss, b.final_loss);
        assert_eq!(a.choices, b.choices);
    }

    #[test]
    fn injected_nan_loss_rolls_back_and_recovers() {
        use defcon_support::fault::{FaultPlan, Schedule};
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let search = IntervalSearch::new(small_cfg(), tiny_lut());
        let _armed = fault::arm(FaultPlan::new(31).point("search.loss", Schedule::Nth(1)));
        let out = search
            .run_robust(&mut net, &mut store, &RobustSearchConfig::default())
            .unwrap();
        assert_eq!(fault::log(), vec!["search.loss#1"]);
        assert!(out.loss_history.iter().all(|l| l.is_finite()));
        assert!(out.final_loss.is_finite());
    }

    #[test]
    fn injected_alpha_grad_nan_rolls_back_and_recovers() {
        use defcon_support::fault::{FaultPlan, Schedule};
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let search = IntervalSearch::new(small_cfg(), tiny_lut());
        let _armed = fault::arm(FaultPlan::new(32).point("search.alpha_grad", Schedule::Nth(0)));
        let out = search
            .run_robust(&mut net, &mut store, &RobustSearchConfig::default())
            .unwrap();
        assert_eq!(fault::log(), vec!["search.alpha_grad#0"]);
        assert!(out.final_loss.is_finite());
        // The rollback path backed the LR off; the store must hold no NaNs.
        assert!(store.values_finite());
    }

    #[test]
    fn persistent_nan_loss_exhausts_retries_into_typed_error() {
        use defcon_support::error::DefconError;
        use defcon_support::fault::{FaultPlan, Schedule};
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let search = IntervalSearch::new(small_cfg(), tiny_lut());
        let _armed = fault::arm(FaultPlan::new(33).point("search.loss", Schedule::Always));
        let err = search
            .run_robust(&mut net, &mut store, &RobustSearchConfig::default())
            .unwrap_err();
        match err {
            DefconError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 4),
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn completed_checkpoint_short_circuits_resume() {
        let _quiet = fault::quiesce();
        let path = tmp_path("complete");
        let _ = std::fs::remove_file(&path);
        let robust = RobustSearchConfig {
            checkpoint: Some(path.clone()),
            ..Default::default()
        };
        let search = IntervalSearch::new(small_cfg(), tiny_lut());
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let first = search.run_robust(&mut net, &mut store, &robust).unwrap();
        // Resume from the completed checkpoint: every epoch is skipped, so
        // the outcome is reproduced exactly even though the model's Gumbel
        // noise stream was never replayed.
        let mut store2 = ParamStore::new();
        let mut net2 = ToyNet::new(&mut store2);
        let second = search.run_robust(&mut net2, &mut store2, &robust).unwrap();
        assert_eq!(first.loss_history, second.loss_history);
        assert_eq!(first.final_loss, second.final_loss);
        assert_eq!(first.choices, second.choices);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checkpoint_is_discarded_and_run_restarts() {
        let _quiet = fault::quiesce();
        let path = tmp_path("corrupt");
        std::fs::write(&path, "deadbeef\nnot the payload").unwrap();
        let robust = RobustSearchConfig {
            checkpoint: Some(path.clone()),
            ..Default::default()
        };
        let search = IntervalSearch::new(small_cfg(), tiny_lut());
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let out = search.run_robust(&mut net, &mut store, &robust).unwrap();
        assert_eq!(out.loss_history.len(), 4);
        // The run overwrote the corrupt file with a valid checkpoint.
        assert!(ckpt::load(&path).unwrap().is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_checkpoint_from_other_model_restarts_cleanly() {
        let _quiet = fault::quiesce();
        // CRC-valid but for a different parameter set: resume must degrade
        // to a fresh start without leaving a partial load in the store.
        let path = tmp_path("stale");
        let mut other_store = ParamStore::new();
        other_store.add("unrelated", Tensor::zeros(&[3]), false);
        let doc = Json::obj(vec![
            ("epochs_done", Json::from(1usize)),
            ("final_loss", Json::Null),
            ("loss_history", Json::Arr(vec![Json::from(0.5)])),
            ("opt_steps", Json::from(3usize)),
            ("opt_lr_scale", Json::from(1.0)),
            ("params", other_store.state_to_json()),
        ]);
        ckpt::save(&path, &doc.to_string()).unwrap();
        let robust = RobustSearchConfig {
            checkpoint: Some(path.clone()),
            ..Default::default()
        };
        let search = IntervalSearch::new(small_cfg(), tiny_lut());
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let out = search.run_robust(&mut net, &mut store, &robust).unwrap();
        assert_eq!(out.loss_history.len(), 4, "must run all epochs fresh");
        assert!(store.values_finite());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn loose_budget_lets_dcns_win_on_deformed_task() {
        let _quiet = fault::quiesce();
        // With no pressure (β=0) on a task built around spatial shift, at
        // least one slot should pick the deformable path.
        let mut store = ParamStore::new();
        let mut net = ToyNet::new(&mut store);
        let cfg = SearchConfig {
            search_epochs: 10,
            finetune_epochs: 1,
            iters_per_epoch: 8,
            beta: 0.0,
            lr: 0.1,
            ..Default::default()
        };
        let search = IntervalSearch::new(cfg, tiny_lut());
        let out = search.run(&mut net, &mut store);
        assert!(
            out.num_dcn() >= 1,
            "expected DCN to win somewhere, layout {}",
            out.layout()
        );
    }
}
