//! # defcon-core
//!
//! The DEFCON public API — the paper's contribution, assembled from the
//! substrates in this workspace:
//!
//! * [`lut`] — the **on-device latency lookup table** the interval search
//!   uses as its speed model (paper §III-A-a: "we build our search
//!   algorithm based on collecting on-device latency and building a lookup
//!   table"). Latencies come from the `defcon-gpusim` simulator.
//! * [`search`] — the **gradient-based interval search** (Algorithm 1):
//!   dual-path supernet training with Gumbel-Softmax mixing, the latency
//!   penalty of Eq. (6)–(8), layer selection by α magnitude, and
//!   fine-tuning of the frozen architecture.
//! * [`autotune`] — the **tile-size autotuner** (paper Fig. 8, ytopt-style
//!   Bayesian optimization with a Gaussian-process surrogate and expected
//!   improvement), plus random- and exhaustive-search baselines.
//! * [`pipeline`] — a configuration facade ([`DefconConfig`]) tying the
//!   optimizations together the way Fig. 3 sequences them: interval search
//!   → lightweight operators → bounded deformation → texel-based
//!   optimization.
//! * [`serve`] — the **throughput-mode simulation service**: a bounded
//!   admission queue over parallel workers with a content-addressed
//!   launch-report cache, exploiting the engine's byte-determinism to
//!   answer repeated requests without re-simulating.
//! * [`chaos`] — seeded **chaos-soak sessions** over the serving layer:
//!   randomized request streams served under an armed fault plan, with a
//!   deterministic summary for invariant and golden checks.
//!
//! Accuracy-side experiments (the YOLACT-style detector, synthetic
//! dataset, mAP) live in `defcon-models`; the reproduction harnesses in
//! `defcon-bench`.

pub mod autotune;
pub mod chaos;
pub mod lut;
pub mod pipeline;
pub mod search;
pub mod serve;

pub use autotune::{AutotuneResult, Autotuner};
pub use lut::{LatencyKey, LatencyLut};
pub use pipeline::DefconConfig;
pub use search::{IntervalSearch, SearchConfig, SearchModel, SearchOutcome};
pub use serve::{
    ReportCache, RequestPolicy, ServeConfig, ServeDevice, SimRequest, SimResponse, SimServer,
};
