//! # defcon-tensor
//!
//! Dense `f32` tensors and the CPU numeric kernels that back the DEFCON
//! reproduction: im2col convolution over a rayon-parallel GEMM, depthwise and
//! pointwise convolutions, pooling, batch normalization, bilinear sampling and
//! the deformable-convolution forward reference.
//!
//! The crate is deliberately small and NCHW-only. It is the numeric ground
//! truth that the GPU-simulator kernels in `defcon-kernels` are validated
//! against, and the storage layer under the autograd tape in `defcon-nn`.
//!
//! ## Layout
//!
//! All image tensors are `[N, C, H, W]` (batch, channel, height, width),
//! row-major, with `W` fastest. Matrices are `[R, C]`. The [`Tensor`] type is
//! rank-generic (dims held in a `Vec<usize>`) but every op documents and
//! checks the rank it expects.
//!
//! ## Example
//!
//! ```
//! use defcon_tensor::{Tensor, conv::{conv2d, Conv2dParams}};
//!
//! let x = Tensor::randn(&[1, 3, 8, 8], 0.0, 1.0, 42);
//! let w = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.1, 43);
//! let y = conv2d(&x, &w, None, &Conv2dParams::same(3));
//! assert_eq!(y.dims(), &[1, 4, 8, 8]);
//! ```

pub mod conv;
pub mod gemm;
pub mod init;
pub mod norm;
pub mod pool;
pub mod sample;
pub mod shape;
pub mod tensor;

pub use sample::{
    deform_conv2d_ref, deform_conv2d_v2_ref, deform_conv2d_v3_ref, sigmoid, tap_softmax,
    DeformConv2dParams,
};
pub use shape::Shape;
pub use tensor::Tensor;

/// Absolute tolerance used by the crate's own tests when comparing two
/// floating-point kernels that should be algorithmically equal but may differ
/// by accumulation order.
pub const TEST_EPS: f32 = 1e-4;

/// Asserts two tensors have the same dims and element-wise agree within
/// `atol + rtol * |b|`. Panics with a diagnostic including the first
/// offending index.
pub fn assert_close(a: &Tensor, b: &Tensor, atol: f32, rtol: f32) {
    assert_eq!(
        a.dims(),
        b.dims(),
        "shape mismatch: {:?} vs {:?}",
        a.dims(),
        b.dims()
    );
    for (i, (&x, &y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        let tol = atol + rtol * y.abs();
        assert!(
            (x - y).abs() <= tol || (x.is_nan() && y.is_nan()),
            "tensors differ at flat index {i}: {x} vs {y} (tol {tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assert_close_accepts_identical() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert_close(&a, &a.clone(), 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "tensors differ")]
    fn assert_close_rejects_different() {
        let a = Tensor::from_vec(vec![1.0], &[1]);
        let b = Tensor::from_vec(vec![2.0], &[1]);
        assert_close(&a, &b, 1e-6, 0.0);
    }
}
