//! Bilinear sampling and the deformable-convolution reference implementation.
//!
//! This module is the numeric ground truth for Eq. (1)–(3) of the paper:
//! a deformable convolution samples the input at fractional positions
//! `p = p_o + p_i + Δp_i` using the bilinear kernel
//! `G(p, q) = g(p_x, q_x) · g(p_y, q_y)`, `g(a, b) = max(0, 1 − |a − b|)`,
//! with out-of-bounds neighbours contributing zero (paper §II-A).
//!
//! Offset layout follows the mmcv/torchvision convention: the offset tensor
//! is `[N, 2·G·k·k, outH, outW]` where `G` is the number of deformable
//! groups; channel `2·(g·k² + tap)` is the **y** offset and `+1` the **x**
//! offset for kernel tap `tap` of group `g`.

use crate::conv::Conv2dParams;
use crate::Tensor;
use defcon_support::par::ParallelSliceMut;

/// Hyper-parameters of a deformable 2-D convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeformConv2dParams {
    /// The underlying convolution window.
    pub conv: Conv2dParams,
    /// Number of deformable groups `G`; input channels are split into `G`
    /// contiguous groups that share one offset field each (paper §II-A).
    pub deform_groups: usize,
}

impl DeformConv2dParams {
    /// 3×3, stride 1, "same" padding, one deformable group.
    pub fn same3x3() -> Self {
        DeformConv2dParams {
            conv: Conv2dParams::same(3),
            deform_groups: 1,
        }
    }

    /// Number of offset channels: `2 · G · k · k` (paper Fig. 1).
    pub fn offset_channels(&self) -> usize {
        2 * self.deform_groups * self.conv.kernel * self.conv.kernel
    }
}

/// Bilinear lookup of `x[n, c]` at fractional position `(y, x)` with
/// zero-valued out-of-bounds neighbours.
#[inline]
pub fn bilinear_sample(t: &Tensor, n: usize, c: usize, y: f32, x: f32) -> f32 {
    let (_, _, h, w) = t.shape().nchw();
    // Entirely outside the support of any in-bounds neighbour.
    if y <= -1.0 || y >= h as f32 || x <= -1.0 || x >= w as f32 {
        return 0.0;
    }
    let y0 = y.floor();
    let x0 = x.floor();
    let dy = y - y0;
    let dx = x - x0;
    let (y0, x0) = (y0 as isize, x0 as isize);
    let mut acc = 0.0f32;
    for (qy, wy) in [(y0, 1.0 - dy), (y0 + 1, dy)] {
        if qy < 0 || qy >= h as isize || wy == 0.0 {
            continue;
        }
        for (qx, wx) in [(x0, 1.0 - dx), (x0 + 1, dx)] {
            if qx < 0 || qx >= w as isize || wx == 0.0 {
                continue;
            }
            acc += wy * wx * t.at4(n, c, qy as usize, qx as usize);
        }
    }
    acc
}

/// Gradient of [`bilinear_sample`] w.r.t. the sampling position.
/// Returns `(d/dy, d/dx)`.
#[inline]
pub fn bilinear_sample_grad_pos(t: &Tensor, n: usize, c: usize, y: f32, x: f32) -> (f32, f32) {
    let (_, _, h, w) = t.shape().nchw();
    if y <= -1.0 || y >= h as f32 || x <= -1.0 || x >= w as f32 {
        return (0.0, 0.0);
    }
    let y0 = y.floor();
    let x0 = x.floor();
    let dy = y - y0;
    let dx = x - x0;
    let (y0, x0) = (y0 as isize, x0 as isize);
    let pix = |qy: isize, qx: isize| -> f32 {
        if qy < 0 || qy >= h as isize || qx < 0 || qx >= w as isize {
            0.0
        } else {
            t.at4(n, c, qy as usize, qx as usize)
        }
    };
    let v00 = pix(y0, x0);
    let v01 = pix(y0, x0 + 1);
    let v10 = pix(y0 + 1, x0);
    let v11 = pix(y0 + 1, x0 + 1);
    // v(y,x) = (1-dy)(1-dx)v00 + (1-dy)dx v01 + dy(1-dx) v10 + dy dx v11
    let gy = -(1.0 - dx) * v00 - dx * v01 + (1.0 - dx) * v10 + dx * v11;
    let gx = -(1.0 - dy) * v00 + (1.0 - dy) * v01 - dy * v10 + dy * v11;
    (gy, gx)
}

/// Per-position contribution of [`bilinear_sample`] to each of the 4
/// neighbours — used for the input gradient. Calls `sink(qy, qx, weight)`
/// for every in-bounds neighbour with non-zero weight.
#[inline]
fn bilinear_scatter(h: usize, w: usize, y: f32, x: f32, mut sink: impl FnMut(usize, usize, f32)) {
    if y <= -1.0 || y >= h as f32 || x <= -1.0 || x >= w as f32 {
        return;
    }
    let y0 = y.floor();
    let x0 = x.floor();
    let dy = y - y0;
    let dx = x - x0;
    let (y0, x0) = (y0 as isize, x0 as isize);
    for (qy, wy) in [(y0, 1.0 - dy), (y0 + 1, dy)] {
        if qy < 0 || qy >= h as isize || wy == 0.0 {
            continue;
        }
        for (qx, wx) in [(x0, 1.0 - dx), (x0 + 1, dx)] {
            if qx < 0 || qx >= w as isize || wx == 0.0 {
                continue;
            }
            sink(qy as usize, qx as usize, wy * wx);
        }
    }
}

/// How learned offsets are post-processed before sampling (paper §III-A-c
/// and Table V).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OffsetTransform {
    /// Use offsets as-is (unbounded deformation, the `∞` point of Fig. 5).
    Identity,
    /// Clamp each offset component to `[-p, p]` (bounded deformation).
    Bounded(f32),
    /// Round each offset to the nearest integer (ablation; hurts accuracy,
    /// Table V).
    Rounded,
    /// Clamp then round (bounded + rounded).
    BoundedRounded(f32),
}

impl OffsetTransform {
    /// Applies the transform to one offset component.
    #[inline]
    pub fn apply(&self, v: f32) -> f32 {
        match *self {
            OffsetTransform::Identity => v,
            OffsetTransform::Bounded(p) => v.clamp(-p, p),
            OffsetTransform::Rounded => v.round(),
            OffsetTransform::BoundedRounded(p) => v.clamp(-p, p).round(),
        }
    }

    /// Derivative of the transform (for straight-through rounding we use the
    /// identity gradient, as is standard practice; clamping gates the
    /// gradient outside the boundary).
    #[inline]
    pub fn grad(&self, v: f32) -> f32 {
        match *self {
            OffsetTransform::Identity | OffsetTransform::Rounded => 1.0,
            OffsetTransform::Bounded(p) | OffsetTransform::BoundedRounded(p) => {
                if (-p..=p).contains(&v) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Deformable convolution forward (reference implementation, Eq. 2).
///
/// * `x`: `[N, C_in, H, W]`
/// * `offsets`: `[N, 2·G·k·k, outH, outW]`
/// * `weight`: `[C_out, C_in, k, k]`
///
/// Returns `[N, C_out, outH, outW]`.
pub fn deform_conv2d_ref(
    x: &Tensor,
    offsets: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: &DeformConv2dParams,
    transform: OffsetTransform,
) -> Tensor {
    let (n, c_in, h, w) = x.shape().nchw();
    let (c_out, wc_in, k, _) = weight.shape().nchw();
    assert_eq!(c_in, wc_in, "deform_conv2d channel mismatch");
    assert_eq!(k, p.conv.kernel);
    assert_eq!(
        c_in % p.deform_groups,
        0,
        "input channels {c_in} not divisible by deform groups {}",
        p.deform_groups
    );
    let (oh, ow) = p.conv.out_hw(h, w);
    assert_eq!(
        offsets.dims(),
        &[n, p.offset_channels(), oh, ow],
        "offset tensor must be [N, 2*G*k*k, outH, outW]"
    );
    let ch_per_group = c_in / p.deform_groups;
    let kk = k * k;

    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    let conv = p.conv;
    let dgroups = p.deform_groups;
    let wdata = weight.data();
    out.data_mut()
        .par_chunks_mut(c_out * oh * ow)
        .enumerate()
        .for_each(|(ni, dst)| {
            // Per-pixel scratch, reused across every output channel: the
            // sampling positions depend only on (g, tap) and the bilinear
            // samples only on (ci, tap), so computing them once per pixel
            // removes the c_out× recomputation of the naive loop. Each
            // output element still sees the identical product sequence in
            // ascending (ci, ki, kj) order, so the bits don't move.
            let mut coords = vec![(0.0f32, 0.0f32); dgroups * kk];
            let mut samples = vec![0.0f32; c_in * kk];
            for oy in 0..oh {
                for ox in 0..ow {
                    for g in 0..dgroups {
                        for ki in 0..k {
                            for kj in 0..k {
                                let tap = ki * k + kj;
                                let oc = 2 * (g * kk + tap);
                                let dy = transform.apply(offsets.at4(ni, oc, oy, ox));
                                let dx = transform.apply(offsets.at4(ni, oc + 1, oy, ox));
                                let py = (oy * conv.stride + ki * conv.dilation) as f32
                                    - conv.pad as f32
                                    + dy;
                                let px = (ox * conv.stride + kj * conv.dilation) as f32
                                    - conv.pad as f32
                                    + dx;
                                coords[g * kk + tap] = (py, px);
                            }
                        }
                    }
                    for ci in 0..c_in {
                        let g = ci / ch_per_group;
                        for (tap, &(py, px)) in coords[g * kk..(g + 1) * kk].iter().enumerate() {
                            samples[ci * kk + tap] = bilinear_sample(x, ni, ci, py, px);
                        }
                    }
                    for co in 0..c_out {
                        let w_row = &wdata[co * c_in * kk..(co + 1) * c_in * kk];
                        dst[(co * oh + oy) * ow + ox] = crate::gemm::dot(w_row, &samples);
                    }
                }
            }
        });
    if let Some(b) = bias {
        crate::conv::add_channel_bias(&mut out, b);
    }
    out
}

/// Verbatim copy of the pre-restructure [`deform_conv2d_ref`] (one task per
/// `(n, c_out)` slab, samples recomputed for every output channel). Kept as
/// the bitwise correctness oracle for the shared-scratch rewrite; see the
/// `legacy_pinning` tests.
pub fn deform_conv2d_ref_legacy(
    x: &Tensor,
    offsets: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: &DeformConv2dParams,
    transform: OffsetTransform,
) -> Tensor {
    let (n, c_in, h, w) = x.shape().nchw();
    let (c_out, wc_in, k, _) = weight.shape().nchw();
    assert_eq!(c_in, wc_in, "deform_conv2d channel mismatch");
    assert_eq!(k, p.conv.kernel);
    assert_eq!(
        c_in % p.deform_groups,
        0,
        "input channels {c_in} not divisible by deform groups {}",
        p.deform_groups
    );
    let (oh, ow) = p.conv.out_hw(h, w);
    assert_eq!(
        offsets.dims(),
        &[n, p.offset_channels(), oh, ow],
        "offset tensor must be [N, 2*G*k*k, outH, outW]"
    );
    let ch_per_group = c_in / p.deform_groups;
    let kk = k * k;

    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    let conv = p.conv;
    let dgroups = p.deform_groups;
    out.data_mut()
        .par_chunks_mut(oh * ow)
        .enumerate()
        .for_each(|(flat, dst)| {
            let (ni, co) = (flat / c_out, flat % c_out);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..c_in {
                        let g = ci / ch_per_group;
                        debug_assert!(g < dgroups);
                        for ki in 0..k {
                            for kj in 0..k {
                                let tap = ki * k + kj;
                                let oc = 2 * (g * kk + tap);
                                let dy = transform.apply(offsets.at4(ni, oc, oy, ox));
                                let dx = transform.apply(offsets.at4(ni, oc + 1, oy, ox));
                                let py = (oy * conv.stride + ki * conv.dilation) as f32
                                    - conv.pad as f32
                                    + dy;
                                let px = (ox * conv.stride + kj * conv.dilation) as f32
                                    - conv.pad as f32
                                    + dx;
                                acc +=
                                    weight.at4(co, ci, ki, kj) * bilinear_sample(x, ni, ci, py, px);
                            }
                        }
                    }
                    dst[oy * ow + ox] = acc;
                }
            }
        });
    if let Some(b) = bias {
        crate::conv::add_channel_bias(&mut out, b);
    }
    out
}

/// Gradients of [`deform_conv2d_ref`] w.r.t. input, offsets, weight and bias.
///
/// Returns `(grad_x, grad_offsets, grad_w, grad_b)`.
pub fn deform_conv2d_backward_ref(
    x: &Tensor,
    offsets: &Tensor,
    weight: &Tensor,
    gy: &Tensor,
    p: &DeformConv2dParams,
    transform: OffsetTransform,
) -> (Tensor, Tensor, Tensor, Tensor) {
    let (n, c_in, h, w) = x.shape().nchw();
    let (c_out, _, k, _) = weight.shape().nchw();
    let (oh, ow) = p.conv.out_hw(h, w);
    let ch_per_group = c_in / p.deform_groups;
    let kk = k * k;
    let conv = p.conv;

    let mut gx = Tensor::zeros(x.dims());
    let mut goff = Tensor::zeros(offsets.dims());
    let mut gw = Tensor::zeros(weight.dims());
    let mut gb = Tensor::zeros(&[c_out]);

    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                for ci in 0..c_in {
                    let g = ci / ch_per_group;
                    for ki in 0..k {
                        for kj in 0..k {
                            let tap = ki * k + kj;
                            let oc = 2 * (g * kk + tap);
                            let raw_dy = offsets.at4(ni, oc, oy, ox);
                            let raw_dx = offsets.at4(ni, oc + 1, oy, ox);
                            let dy = transform.apply(raw_dy);
                            let dx = transform.apply(raw_dx);
                            let py = (oy * conv.stride + ki * conv.dilation) as f32
                                - conv.pad as f32
                                + dy;
                            let px = (ox * conv.stride + kj * conv.dilation) as f32
                                - conv.pad as f32
                                + dx;

                            let sampled = bilinear_sample(x, ni, ci, py, px);
                            let (gpy, gpx) = bilinear_sample_grad_pos(x, ni, ci, py, px);

                            // Accumulate over output channels once per (ci, tap).
                            let mut gsum = 0.0f32; // Σ_co gy * w — multiplies positional/input grads
                            for co in 0..c_out {
                                let gout = gy.at4(ni, co, oy, ox);
                                if gout == 0.0 {
                                    continue;
                                }
                                let wv = weight.at4(co, ci, ki, kj);
                                gsum += gout * wv;
                                *gw.at4_mut(co, ci, ki, kj) += gout * sampled;
                            }
                            if gsum != 0.0 {
                                *goff.at4_mut(ni, oc, oy, ox) +=
                                    gsum * gpy * transform.grad(raw_dy);
                                *goff.at4_mut(ni, oc + 1, oy, ox) +=
                                    gsum * gpx * transform.grad(raw_dx);
                                bilinear_scatter(h, w, py, px, |qy, qx, wgt| {
                                    *gx.at4_mut(ni, ci, qy, qx) += gsum * wgt;
                                });
                            }
                        }
                    }
                }
                for co in 0..c_out {
                    gb.data_mut()[co] += gy.at4(ni, co, oy, ox);
                }
            }
        }
    }
    (gx, goff, gw, gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::conv::conv2d;

    #[test]
    fn bilinear_at_integer_positions_is_exact_lookup() {
        let t = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(
                    bilinear_sample(&t, 0, 0, y as f32, x as f32),
                    t.at4(0, 0, y, x)
                );
            }
        }
    }

    #[test]
    fn bilinear_midpoint_averages() {
        let t = Tensor::from_vec(vec![0.0, 2.0, 4.0, 6.0], &[1, 1, 2, 2]);
        assert!((bilinear_sample(&t, 0, 0, 0.5, 0.5) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn bilinear_out_of_bounds_is_zero() {
        let t = Tensor::ones(&[1, 1, 3, 3]);
        assert_eq!(bilinear_sample(&t, 0, 0, -1.5, 0.0), 0.0);
        assert_eq!(bilinear_sample(&t, 0, 0, 0.0, 3.0), 0.0);
        // Partially out of bounds: only in-bounds neighbours contribute.
        assert!((bilinear_sample(&t, 0, 0, -0.5, 0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn bilinear_pos_gradient_matches_finite_difference() {
        let t = Tensor::randn(&[1, 1, 6, 6], 0.0, 1.0, 31);
        let eps = 1e-3f32;
        for &(y, x) in &[(1.3f32, 2.7f32), (0.2, 0.2), (4.6, 4.9), (0.4, 5.2)] {
            let (gy, gx) = bilinear_sample_grad_pos(&t, 0, 0, y, x);
            let fy = (bilinear_sample(&t, 0, 0, y + eps, x)
                - bilinear_sample(&t, 0, 0, y - eps, x))
                / (2.0 * eps);
            let fx = (bilinear_sample(&t, 0, 0, y, x + eps)
                - bilinear_sample(&t, 0, 0, y, x - eps))
                / (2.0 * eps);
            assert!((gy - fy).abs() < 1e-2, "dy at ({y},{x}): {gy} vs {fy}");
            assert!((gx - fx).abs() < 1e-2, "dx at ({y},{x}): {gx} vs {fx}");
        }
    }

    #[test]
    fn zero_offsets_reduce_to_regular_conv() {
        let p = DeformConv2dParams::same3x3();
        let x = Tensor::randn(&[1, 3, 7, 7], 0.0, 1.0, 32);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.5, 33);
        let off = Tensor::zeros(&[1, p.offset_channels(), 7, 7]);
        let y_def = deform_conv2d_ref(&x, &off, &w, None, &p, OffsetTransform::Identity);
        let y_reg = conv2d(&x, &w, None, &p.conv);
        assert_close(&y_def, &y_reg, 1e-4, 1e-4);
    }

    #[test]
    fn integer_offsets_shift_sampling() {
        // A single-pixel image and a 1x1 kernel: offset (1, 0) should read
        // the pixel below.
        let p = DeformConv2dParams {
            conv: Conv2dParams {
                kernel: 1,
                stride: 1,
                pad: 0,
                dilation: 1,
            },
            deform_groups: 1,
        };
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let mut off = Tensor::zeros(&[1, 2, 2, 2]);
        // Δy = 1 at output (0,0): samples x[1,0] = 3.
        *off.at4_mut(0, 0, 0, 0) = 1.0;
        let y = deform_conv2d_ref(&x, &off, &w, None, &p, OffsetTransform::Identity);
        assert_eq!(y.at4(0, 0, 0, 0), 3.0);
        assert_eq!(y.at4(0, 0, 1, 1), 4.0);
    }

    #[test]
    fn deform_groups_share_offsets_within_group() {
        let p = DeformConv2dParams {
            conv: Conv2dParams::same(3),
            deform_groups: 2,
        };
        assert_eq!(p.offset_channels(), 36);
        let x = Tensor::randn(&[1, 4, 5, 5], 0.0, 1.0, 34);
        let w = Tensor::randn(&[2, 4, 3, 3], 0.0, 0.5, 35);
        let off = Tensor::rand_uniform(&[1, 36, 5, 5], -1.0, 1.0, 36);
        // Consistency: computing with G=2 must equal manual two-group sum.
        let y = deform_conv2d_ref(&x, &off, &w, None, &p, OffsetTransform::Identity);
        assert_eq!(y.dims(), &[1, 2, 5, 5]);
        // Group 0 (channels 0..2) must be insensitive to group-1 offsets.
        let mut off2 = off.clone();
        for t in 18..36 {
            for yy in 0..5 {
                for xx in 0..5 {
                    *off2.at4_mut(0, t, yy, xx) += 0.37;
                }
            }
        }
        // Zero the group-1 input channels so the output only depends on group 0.
        let mut x0 = x.clone();
        for c in 2..4 {
            for yy in 0..5 {
                for xx in 0..5 {
                    *x0.at4_mut(0, c, yy, xx) = 0.0;
                }
            }
        }
        let a = deform_conv2d_ref(&x0, &off, &w, None, &p, OffsetTransform::Identity);
        let b = deform_conv2d_ref(&x0, &off2, &w, None, &p, OffsetTransform::Identity);
        assert_close(&a, &b, 1e-5, 1e-5);
    }

    #[test]
    fn bounded_transform_clamps() {
        let t = OffsetTransform::Bounded(7.0);
        assert_eq!(t.apply(10.0), 7.0);
        assert_eq!(t.apply(-9.0), -7.0);
        assert_eq!(t.apply(3.2), 3.2);
        assert_eq!(t.grad(10.0), 0.0);
        assert_eq!(t.grad(3.2), 1.0);
    }

    #[test]
    fn rounded_transform_rounds() {
        let t = OffsetTransform::Rounded;
        assert_eq!(t.apply(1.4), 1.0);
        assert_eq!(t.apply(-0.6), -1.0);
        assert_eq!(t.grad(1.4), 1.0); // straight-through
    }

    #[test]
    fn backward_matches_finite_difference() {
        let p = DeformConv2dParams {
            conv: Conv2dParams::same(3),
            deform_groups: 1,
        };
        let x = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, 37);
        let w = Tensor::randn(&[2, 2, 3, 3], 0.0, 0.5, 38);
        let off = Tensor::rand_uniform(&[1, 18, 5, 5], -0.8, 0.8, 39);
        let tr = OffsetTransform::Identity;

        let y = deform_conv2d_ref(&x, &off, &w, None, &p, tr);
        // Weighted-sum loss for non-trivial gy.
        let gy = Tensor::from_vec(
            (0..y.numel())
                .map(|i| ((i % 7) as f32 - 3.0) * 0.5)
                .collect(),
            y.dims(),
        );
        let loss = |x: &Tensor, off: &Tensor, w: &Tensor| {
            deform_conv2d_ref(x, off, w, None, &p, tr)
                .data()
                .iter()
                .zip(gy.data().iter())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let (gx, goff, gw, _gb) = deform_conv2d_backward_ref(&x, &off, &w, &gy, &p, tr);

        let eps = 1e-2f32;
        for &idx in &[3usize, 12, 30, 44] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&xp, &off, &w) - loss(&xm, &off, &w)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 3e-2,
                "gx[{idx}]: {fd} vs {}",
                gx.data()[idx]
            );
        }
        for &idx in &[0usize, 10, 100, 300] {
            let mut op = off.clone();
            op.data_mut()[idx] += eps;
            let mut om = off.clone();
            om.data_mut()[idx] -= eps;
            let fd = (loss(&x, &op, &w) - loss(&x, &om, &w)) / (2.0 * eps);
            assert!(
                (fd - goff.data()[idx]).abs() < 3e-2,
                "goff[{idx}]: {fd} vs {}",
                goff.data()[idx]
            );
        }
        for &idx in &[0usize, 9, 20] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fd = (loss(&x, &off, &wp) - loss(&x, &off, &wm)) / (2.0 * eps);
            assert!(
                (fd - gw.data()[idx]).abs() < 3e-2,
                "gw[{idx}]: {fd} vs {}",
                gw.data()[idx]
            );
        }
    }

    #[test]
    fn bounded_matches_identity_when_within_bound() {
        let p = DeformConv2dParams::same3x3();
        let x = Tensor::randn(&[1, 2, 6, 6], 0.0, 1.0, 40);
        let w = Tensor::randn(&[2, 2, 3, 3], 0.0, 0.5, 41);
        let off = Tensor::rand_uniform(&[1, 18, 6, 6], -2.0, 2.0, 42);
        let a = deform_conv2d_ref(&x, &off, &w, None, &p, OffsetTransform::Identity);
        let b = deform_conv2d_ref(&x, &off, &w, None, &p, OffsetTransform::Bounded(7.0));
        assert_close(&a, &b, 1e-6, 1e-6);
    }
}

// ---------------------------------------------------------------------------
// Modulated deformable convolution (DCNv2, Zhu et al. — the variant
// YOLACT++ builds on: each tap also learns a scalar modulation weight)
// ---------------------------------------------------------------------------

/// Modulated deformable convolution forward (DCNv2):
///
/// `y(p_o) = Σ_i w(p_i) · m_i(p_o) · x(p_o + p_i + Δp_i)`
///
/// * `mask`: `[N, G·k², outH, outW]` modulation scalars, already passed
///   through a sigmoid by the caller (channel `g·k² + tap`).
///
/// Offsets follow the same layout and transform rules as
/// [`deform_conv2d_ref`].
pub fn deform_conv2d_v2_ref(
    x: &Tensor,
    offsets: &Tensor,
    mask: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: &DeformConv2dParams,
    transform: OffsetTransform,
) -> Tensor {
    let (n, c_in, h, w) = x.shape().nchw();
    let (c_out, _, k, _) = weight.shape().nchw();
    let (oh, ow) = p.conv.out_hw(h, w);
    let kk = k * k;
    assert_eq!(
        mask.dims(),
        &[n, p.deform_groups * kk, oh, ow],
        "mask tensor must be [N, G*k*k, outH, outW]"
    );
    let ch_per_group = c_in / p.deform_groups;
    let conv = p.conv;
    let dgroups = p.deform_groups;
    let wdata = weight.data();

    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    out.data_mut()
        .par_chunks_mut(c_out * oh * ow)
        .enumerate()
        .for_each(|(ni, dst)| {
            // Shared per-pixel scratch (see `deform_conv2d_ref`). The
            // modulation factor is hoisted per (g, tap) but the multiply
            // stays `(w · m) · sample` — the exact association the
            // v3 ≡ flat-mask-v2 byte identity is pinned to.
            let mut coords = vec![(0.0f32, 0.0f32); dgroups * kk];
            let mut mfac = vec![0.0f32; dgroups * kk];
            let mut samples = vec![0.0f32; c_in * kk];
            for oy in 0..oh {
                for ox in 0..ow {
                    for g in 0..dgroups {
                        for ki in 0..k {
                            for kj in 0..k {
                                let tap = ki * k + kj;
                                let oc = 2 * (g * kk + tap);
                                let dy = transform.apply(offsets.at4(ni, oc, oy, ox));
                                let dx = transform.apply(offsets.at4(ni, oc + 1, oy, ox));
                                let py = (oy * conv.stride + ki * conv.dilation) as f32
                                    - conv.pad as f32
                                    + dy;
                                let px = (ox * conv.stride + kj * conv.dilation) as f32
                                    - conv.pad as f32
                                    + dx;
                                coords[g * kk + tap] = (py, px);
                                mfac[g * kk + tap] = mask.at4(ni, g * kk + tap, oy, ox);
                            }
                        }
                    }
                    for ci in 0..c_in {
                        let g = ci / ch_per_group;
                        for (tap, &(py, px)) in coords[g * kk..(g + 1) * kk].iter().enumerate() {
                            samples[ci * kk + tap] = bilinear_sample(x, ni, ci, py, px);
                        }
                    }
                    for co in 0..c_out {
                        let w_row = &wdata[co * c_in * kk..(co + 1) * c_in * kk];
                        let mut acc = 0.0f32;
                        for ci in 0..c_in {
                            let g = ci / ch_per_group;
                            let mrow = &mfac[g * kk..(g + 1) * kk];
                            let srow = &samples[ci * kk..(ci + 1) * kk];
                            let wrow = &w_row[ci * kk..(ci + 1) * kk];
                            for tap in 0..kk {
                                acc += wrow[tap] * mrow[tap] * srow[tap];
                            }
                        }
                        dst[(co * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        });
    if let Some(b) = bias {
        crate::conv::add_channel_bias(&mut out, b);
    }
    out
}

/// Verbatim copy of the pre-restructure [`deform_conv2d_v2_ref`]; bitwise
/// oracle for the shared-scratch rewrite (see the `legacy_pinning` tests).
#[allow(clippy::too_many_arguments)]
pub fn deform_conv2d_v2_ref_legacy(
    x: &Tensor,
    offsets: &Tensor,
    mask: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: &DeformConv2dParams,
    transform: OffsetTransform,
) -> Tensor {
    let (n, c_in, h, w) = x.shape().nchw();
    let (c_out, _, k, _) = weight.shape().nchw();
    let (oh, ow) = p.conv.out_hw(h, w);
    let kk = k * k;
    assert_eq!(
        mask.dims(),
        &[n, p.deform_groups * kk, oh, ow],
        "mask tensor must be [N, G*k*k, outH, outW]"
    );
    let ch_per_group = c_in / p.deform_groups;
    let conv = p.conv;

    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    out.data_mut()
        .par_chunks_mut(oh * ow)
        .enumerate()
        .for_each(|(flat, dst)| {
            let (ni, co) = (flat / c_out, flat % c_out);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..c_in {
                        let g = ci / ch_per_group;
                        for ki in 0..k {
                            for kj in 0..k {
                                let tap = ki * k + kj;
                                let oc = 2 * (g * kk + tap);
                                let dy = transform.apply(offsets.at4(ni, oc, oy, ox));
                                let dx = transform.apply(offsets.at4(ni, oc + 1, oy, ox));
                                let m = mask.at4(ni, g * kk + tap, oy, ox);
                                let py = (oy * conv.stride + ki * conv.dilation) as f32
                                    - conv.pad as f32
                                    + dy;
                                let px = (ox * conv.stride + kj * conv.dilation) as f32
                                    - conv.pad as f32
                                    + dx;
                                acc += weight.at4(co, ci, ki, kj)
                                    * m
                                    * bilinear_sample(x, ni, ci, py, px);
                            }
                        }
                    }
                    dst[oy * ow + ox] = acc;
                }
            }
        });
    if let Some(b) = bias {
        crate::conv::add_channel_bias(&mut out, b);
    }
    out
}

/// Gradients of [`deform_conv2d_v2_ref`] w.r.t. input, offsets, mask,
/// weight and bias: `(gx, goff, gmask, gw, gb)`.
#[allow(clippy::too_many_arguments)]
pub fn deform_conv2d_v2_backward_ref(
    x: &Tensor,
    offsets: &Tensor,
    mask: &Tensor,
    weight: &Tensor,
    gy: &Tensor,
    p: &DeformConv2dParams,
    transform: OffsetTransform,
) -> (Tensor, Tensor, Tensor, Tensor, Tensor) {
    let (n, c_in, h, w) = x.shape().nchw();
    let (c_out, _, k, _) = weight.shape().nchw();
    let (oh, ow) = p.conv.out_hw(h, w);
    let ch_per_group = c_in / p.deform_groups;
    let kk = k * k;
    let conv = p.conv;

    let mut gx = Tensor::zeros(x.dims());
    let mut goff = Tensor::zeros(offsets.dims());
    let mut gmask = Tensor::zeros(mask.dims());
    let mut gw = Tensor::zeros(weight.dims());
    let mut gb = Tensor::zeros(&[c_out]);

    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                for ci in 0..c_in {
                    let g = ci / ch_per_group;
                    for ki in 0..k {
                        for kj in 0..k {
                            let tap = ki * k + kj;
                            let oc = 2 * (g * kk + tap);
                            let raw_dy = offsets.at4(ni, oc, oy, ox);
                            let raw_dx = offsets.at4(ni, oc + 1, oy, ox);
                            let dy = transform.apply(raw_dy);
                            let dx = transform.apply(raw_dx);
                            let m = mask.at4(ni, g * kk + tap, oy, ox);
                            let py = (oy * conv.stride + ki * conv.dilation) as f32
                                - conv.pad as f32
                                + dy;
                            let px = (ox * conv.stride + kj * conv.dilation) as f32
                                - conv.pad as f32
                                + dx;

                            let sampled = bilinear_sample(x, ni, ci, py, px);
                            let (gpy, gpx) = bilinear_sample_grad_pos(x, ni, ci, py, px);

                            let mut gsum = 0.0f32;
                            for co in 0..c_out {
                                let gout = gy.at4(ni, co, oy, ox);
                                if gout == 0.0 {
                                    continue;
                                }
                                let wv = weight.at4(co, ci, ki, kj);
                                gsum += gout * wv;
                                *gw.at4_mut(co, ci, ki, kj) += gout * m * sampled;
                            }
                            if gsum != 0.0 {
                                *gmask.at4_mut(ni, g * kk + tap, oy, ox) += gsum * sampled;
                                let gm = gsum * m;
                                *goff.at4_mut(ni, oc, oy, ox) += gm * gpy * transform.grad(raw_dy);
                                *goff.at4_mut(ni, oc + 1, oy, ox) +=
                                    gm * gpx * transform.grad(raw_dx);
                                bilinear_scatter(h, w, py, px, |qy, qx, wgt| {
                                    *gx.at4_mut(ni, ci, qy, qx) += gm * wgt;
                                });
                            }
                        }
                    }
                }
                for co in 0..c_out {
                    gb.data_mut()[co] += gy.at4(ni, co, oy, ox);
                }
            }
        }
    }
    (gx, goff, gmask, gw, gb)
}

// ---------------------------------------------------------------------------

/// Numerically stable logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`.
///
/// Both branches avoid overflow in the exponential: for `x ≥ 0` the
/// argument of `exp` is non-positive, for `x < 0` the small exponential
/// appears in numerator and denominator. The result is always in
/// `[0, 1]` and strictly monotone in `x`.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Softmax over one deformable group's `k²` tap logits, computed in f64
/// with the max subtracted (DCNv3 normalization).
///
/// The f64 accumulation keeps `Σᵢ wᵢ = 1` within 1e-12 for any sane
/// logit range, and for *constant* logits every shifted exponential is
/// exactly `exp(0) = 1.0`, so each weight is exactly `fl(1/k²)` — the
/// property the v3 ≡ uniform-average conformance identity relies on.
pub fn tap_softmax(logits: &[f32]) -> Vec<f64> {
    let max = logits
        .iter()
        .fold(f64::NEG_INFINITY, |m, &v| m.max(v as f64));
    let mut exps: Vec<f64> = logits.iter().map(|&v| (v as f64 - max).exp()).collect();
    let z: f64 = exps.iter().sum();
    for e in &mut exps {
        *e /= z;
    }
    exps
}

/// Sparse-aggregation deformable convolution forward (DCNv3):
///
/// `y(p_o) = Σ_i w(p_i) · softmax_i(l(p_o))_i · x(p_o + p_i + Δp_i)`
///
/// * `logits`: `[N, G·k², outH, outW]` **raw** aggregation logits
///   (channel `g·k² + tap`); the softmax over the `k²` taps of each
///   group is computed here, per output position — unlike DCNv2 the
///   caller passes no sigmoid-activated mask.
///
/// Offsets follow the same layout and transform rules as
/// [`deform_conv2d_ref`]. The per-tap multiply order matches
/// [`deform_conv2d_v2_ref`] (`w · m · sample`), so v3 with constant
/// logits is byte-identical to v2 with a flat `fl(1/k²)` mask.
pub fn deform_conv2d_v3_ref(
    x: &Tensor,
    offsets: &Tensor,
    logits: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: &DeformConv2dParams,
    transform: OffsetTransform,
) -> Tensor {
    let (n, c_in, h, w) = x.shape().nchw();
    let (c_out, _, k, _) = weight.shape().nchw();
    let (oh, ow) = p.conv.out_hw(h, w);
    let kk = k * k;
    assert_eq!(
        logits.dims(),
        &[n, p.deform_groups * kk, oh, ow],
        "logit tensor must be [N, G*k*k, outH, outW]"
    );
    let ch_per_group = c_in / p.deform_groups;
    let dgroups = p.deform_groups;
    let conv = p.conv;
    let wdata = weight.data();

    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    out.data_mut()
        .par_chunks_mut(c_out * oh * ow)
        .enumerate()
        .for_each(|(ni, dst)| {
            // Shared per-pixel scratch (see `deform_conv2d_ref`). The
            // softmax is computed once per pixel instead of once per
            // (pixel, output-channel) pair; the f64→f32 cast happens when
            // `mfac` is filled, and the multiply stays `(w · m) · sample`
            // — the exact association the v3 ≡ flat-mask-v2 byte identity
            // is pinned to.
            let mut raw = vec![0.0f32; kk];
            let mut coords = vec![(0.0f32, 0.0f32); dgroups * kk];
            let mut mfac = vec![0.0f32; dgroups * kk];
            let mut samples = vec![0.0f32; c_in * kk];
            for oy in 0..oh {
                for ox in 0..ow {
                    for g in 0..dgroups {
                        for (tap, slot) in raw.iter_mut().enumerate() {
                            *slot = logits.at4(ni, g * kk + tap, oy, ox);
                        }
                        for (tap, &wv) in tap_softmax(&raw).iter().enumerate() {
                            mfac[g * kk + tap] = wv as f32;
                        }
                        for ki in 0..k {
                            for kj in 0..k {
                                let tap = ki * k + kj;
                                let oc = 2 * (g * kk + tap);
                                let dy = transform.apply(offsets.at4(ni, oc, oy, ox));
                                let dx = transform.apply(offsets.at4(ni, oc + 1, oy, ox));
                                let py = (oy * conv.stride + ki * conv.dilation) as f32
                                    - conv.pad as f32
                                    + dy;
                                let px = (ox * conv.stride + kj * conv.dilation) as f32
                                    - conv.pad as f32
                                    + dx;
                                coords[g * kk + tap] = (py, px);
                            }
                        }
                    }
                    for ci in 0..c_in {
                        let g = ci / ch_per_group;
                        for (tap, &(py, px)) in coords[g * kk..(g + 1) * kk].iter().enumerate() {
                            samples[ci * kk + tap] = bilinear_sample(x, ni, ci, py, px);
                        }
                    }
                    for co in 0..c_out {
                        let w_row = &wdata[co * c_in * kk..(co + 1) * c_in * kk];
                        let mut acc = 0.0f32;
                        for ci in 0..c_in {
                            let g = ci / ch_per_group;
                            let mrow = &mfac[g * kk..(g + 1) * kk];
                            let srow = &samples[ci * kk..(ci + 1) * kk];
                            let wrow = &w_row[ci * kk..(ci + 1) * kk];
                            for tap in 0..kk {
                                acc += wrow[tap] * mrow[tap] * srow[tap];
                            }
                        }
                        dst[(co * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        });
    if let Some(b) = bias {
        crate::conv::add_channel_bias(&mut out, b);
    }
    out
}

/// Verbatim copy of the pre-restructure [`deform_conv2d_v3_ref`]; bitwise
/// oracle for the shared-scratch rewrite (see the `legacy_pinning` tests).
#[allow(clippy::too_many_arguments)]
pub fn deform_conv2d_v3_ref_legacy(
    x: &Tensor,
    offsets: &Tensor,
    logits: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: &DeformConv2dParams,
    transform: OffsetTransform,
) -> Tensor {
    let (n, c_in, h, w) = x.shape().nchw();
    let (c_out, _, k, _) = weight.shape().nchw();
    let (oh, ow) = p.conv.out_hw(h, w);
    let kk = k * k;
    assert_eq!(
        logits.dims(),
        &[n, p.deform_groups * kk, oh, ow],
        "logit tensor must be [N, G*k*k, outH, outW]"
    );
    let ch_per_group = c_in / p.deform_groups;
    let dgroups = p.deform_groups;
    let conv = p.conv;

    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    out.data_mut()
        .par_chunks_mut(oh * ow)
        .enumerate()
        .for_each(|(flat, dst)| {
            let (ni, co) = (flat / c_out, flat % c_out);
            let mut raw = vec![0.0f32; kk];
            let mut wsoft = vec![0.0f64; dgroups * kk];
            for oy in 0..oh {
                for ox in 0..ow {
                    for g in 0..dgroups {
                        for (tap, slot) in raw.iter_mut().enumerate() {
                            *slot = logits.at4(ni, g * kk + tap, oy, ox);
                        }
                        wsoft[g * kk..(g + 1) * kk].copy_from_slice(&tap_softmax(&raw));
                    }
                    let mut acc = 0.0f32;
                    for ci in 0..c_in {
                        let g = ci / ch_per_group;
                        for ki in 0..k {
                            for kj in 0..k {
                                let tap = ki * k + kj;
                                let oc = 2 * (g * kk + tap);
                                let dy = transform.apply(offsets.at4(ni, oc, oy, ox));
                                let dx = transform.apply(offsets.at4(ni, oc + 1, oy, ox));
                                let py = (oy * conv.stride + ki * conv.dilation) as f32
                                    - conv.pad as f32
                                    + dy;
                                let px = (ox * conv.stride + kj * conv.dilation) as f32
                                    - conv.pad as f32
                                    + dx;
                                acc += weight.at4(co, ci, ki, kj)
                                    * (wsoft[g * kk + tap] as f32)
                                    * bilinear_sample(x, ni, ci, py, px);
                            }
                        }
                    }
                    dst[oy * ow + ox] = acc;
                }
            }
        });
    if let Some(b) = bias {
        crate::conv::add_channel_bias(&mut out, b);
    }
    out
}

#[cfg(test)]
mod v2_tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn unit_mask_reduces_to_dcn_v1() {
        let p = DeformConv2dParams::same3x3();
        let x = Tensor::randn(&[1, 3, 7, 7], 0.0, 1.0, 200);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.4, 201);
        let off = Tensor::rand_uniform(&[1, 18, 7, 7], -1.5, 1.5, 202);
        let m = Tensor::ones(&[1, 9, 7, 7]);
        let v2 = deform_conv2d_v2_ref(&x, &off, &m, &w, None, &p, OffsetTransform::Identity);
        let v1 = deform_conv2d_ref(&x, &off, &w, None, &p, OffsetTransform::Identity);
        assert_close(&v2, &v1, 1e-4, 1e-4);
    }

    #[test]
    fn zero_mask_zeroes_output() {
        let p = DeformConv2dParams::same3x3();
        let x = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, 203);
        let w = Tensor::randn(&[2, 2, 3, 3], 0.0, 0.4, 204);
        let off = Tensor::zeros(&[1, 18, 5, 5]);
        let m = Tensor::zeros(&[1, 9, 5, 5]);
        let y = deform_conv2d_v2_ref(&x, &off, &m, &w, None, &p, OffsetTransform::Identity);
        assert!(y.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn per_tap_modulation_gates_only_its_tap() {
        // 1x1 kernel: masking the single tap scales the whole output.
        let p = DeformConv2dParams {
            conv: crate::conv::Conv2dParams {
                kernel: 1,
                stride: 1,
                pad: 0,
                dilation: 1,
            },
            deform_groups: 1,
        };
        let x = Tensor::randn(&[1, 1, 4, 4], 0.0, 1.0, 205);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let off = Tensor::zeros(&[1, 2, 4, 4]);
        let m = Tensor::full(&[1, 1, 4, 4], 0.25);
        let y = deform_conv2d_v2_ref(&x, &off, &m, &w, None, &p, OffsetTransform::Identity);
        assert_close(&y, &x.scale(0.25), 1e-6, 1e-6);
    }

    #[test]
    fn v2_backward_matches_finite_difference() {
        let p = DeformConv2dParams::same3x3();
        let x = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, 206);
        let w = Tensor::randn(&[2, 2, 3, 3], 0.0, 0.4, 207);
        let off = Tensor::rand_uniform(&[1, 18, 5, 5], -0.9, 0.9, 208);
        let m = Tensor::rand_uniform(&[1, 9, 5, 5], 0.2, 0.9, 209);
        let tr = OffsetTransform::Identity;
        let y = deform_conv2d_v2_ref(&x, &off, &m, &w, None, &p, tr);
        let gy = Tensor::from_vec(
            (0..y.numel())
                .map(|i| ((i % 5) as f32 - 2.0) * 0.4)
                .collect(),
            y.dims(),
        );
        let loss = |x: &Tensor, off: &Tensor, m: &Tensor, w: &Tensor| {
            deform_conv2d_v2_ref(x, off, m, w, None, &p, tr)
                .data()
                .iter()
                .zip(gy.data().iter())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let (gx, goff, gmask, gw, _) = deform_conv2d_v2_backward_ref(&x, &off, &m, &w, &gy, &p, tr);

        let eps = 1e-2f32;
        for &idx in &[0usize, 13, 30] {
            let mut a = x.clone();
            a.data_mut()[idx] += eps;
            let mut b = x.clone();
            b.data_mut()[idx] -= eps;
            let fd = (loss(&a, &off, &m, &w) - loss(&b, &off, &m, &w)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 3e-2,
                "gx[{idx}]: {fd} vs {}",
                gx.data()[idx]
            );
        }
        for &idx in &[5usize, 77, 200] {
            let mut a = off.clone();
            a.data_mut()[idx] += eps;
            let mut b = off.clone();
            b.data_mut()[idx] -= eps;
            let fd = (loss(&x, &a, &m, &w) - loss(&x, &b, &m, &w)) / (2.0 * eps);
            assert!(
                (fd - goff.data()[idx]).abs() < 3e-2,
                "goff[{idx}]: {fd} vs {}",
                goff.data()[idx]
            );
        }
        for &idx in &[0usize, 60, 150] {
            let mut a = m.clone();
            a.data_mut()[idx] += eps;
            let mut b = m.clone();
            b.data_mut()[idx] -= eps;
            let fd = (loss(&x, &off, &a, &w) - loss(&x, &off, &b, &w)) / (2.0 * eps);
            assert!(
                (fd - gmask.data()[idx]).abs() < 3e-2,
                "gmask[{idx}]: {fd} vs {}",
                gmask.data()[idx]
            );
        }
        for &idx in &[0usize, 17] {
            let mut a = w.clone();
            a.data_mut()[idx] += eps;
            let mut b = w.clone();
            b.data_mut()[idx] -= eps;
            let fd = (loss(&x, &off, &m, &a) - loss(&x, &off, &m, &b)) / (2.0 * eps);
            assert!(
                (fd - gw.data()[idx]).abs() < 3e-2,
                "gw[{idx}]: {fd} vs {}",
                gw.data()[idx]
            );
        }
    }
}

#[cfg(test)]
mod v3_tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn sigmoid_range_monotone_and_symmetric() {
        let mut prev = f32::NEG_INFINITY;
        for i in -200..=200 {
            let x = i as f32 * 0.5;
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s), "sigmoid({x}) = {s} out of range");
            assert!(s >= prev, "sigmoid not monotone at {x}");
            assert!((sigmoid(-x) - (1.0 - s)).abs() < 1e-6);
            prev = s;
        }
        assert_eq!(sigmoid(0.0), 0.5);
        assert_eq!(sigmoid(100.0), 1.0);
        assert!(sigmoid(-100.0) < 1e-30);
    }

    #[test]
    fn tap_softmax_sums_to_one_and_is_uniform_on_constant_logits() {
        let w = tap_softmax(&[1.25; 9]);
        for &v in &w {
            assert_eq!(v, 1.0 / 9.0, "constant logits must give exact fl(1/k²)");
        }
        let w = tap_softmax(&[0.3, -2.0, 5.5, 0.0, 1.0, -0.7, 3.2, 2.2, -4.4]);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "softmax sum {sum}");
        assert!(w.iter().all(|&v| v > 0.0 && v < 1.0));
        // The largest logit must carry the largest weight.
        assert_eq!(
            w.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i),
            Some(2)
        );
    }

    #[test]
    fn constant_logits_match_flat_v2_mask_bytewise() {
        // DCNv3 with constant logits is a uniform average over taps, i.e.
        // DCNv2 with a flat fl(1/k²) mask — byte-for-byte, because both
        // paths multiply `w · m · sample` with the same m.
        let p = DeformConv2dParams::same3x3();
        let x = Tensor::randn(&[1, 4, 6, 6], 0.0, 1.0, 300);
        let w = Tensor::randn(&[3, 4, 3, 3], 0.0, 0.4, 301);
        let off = Tensor::rand_uniform(&[1, 18, 6, 6], -1.2, 1.2, 302);
        let logits = Tensor::full(&[1, 9, 6, 6], 0.875);
        let mask = Tensor::full(&[1, 9, 6, 6], (1.0f64 / 9.0) as f32);
        let v3 = deform_conv2d_v3_ref(&x, &off, &logits, &w, None, &p, OffsetTransform::Identity);
        let v2 = deform_conv2d_v2_ref(&x, &off, &mask, &w, None, &p, OffsetTransform::Identity);
        assert_eq!(v3.data(), v2.data(), "uniform reduction must be exact");
    }

    #[test]
    fn softmax_weights_are_permutation_equivariant_in_the_output() {
        let p = DeformConv2dParams::same3x3();
        let x = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, 303);
        let w = Tensor::randn(&[2, 2, 3, 3], 0.0, 0.4, 304);
        let off = Tensor::zeros(&[1, 18, 5, 5]);
        // A one-hot-ish logit pattern: tap 4 (the centre) dominates.
        let mut logits = Tensor::full(&[1, 9, 5, 5], -20.0);
        for oy in 0..5 {
            for ox in 0..5 {
                *logits.at4_mut(0, 4, oy, ox) = 20.0;
            }
        }
        let y = deform_conv2d_v3_ref(&x, &off, &logits, &w, None, &p, OffsetTransform::Identity);
        // With the centre tap dominating and zero offsets this is a plain
        // 1x1 conv with the centre weights.
        let mut expect = Tensor::zeros(&[1, 2, 5, 5]);
        for co in 0..2 {
            for oy in 0..5 {
                for ox in 0..5 {
                    let mut acc = 0.0f32;
                    for ci in 0..2 {
                        acc += w.at4(co, ci, 1, 1) * x.at4(0, ci, oy, ox);
                    }
                    *expect.at4_mut(0, co, oy, ox) = acc;
                }
            }
        }
        assert_close(&y, &expect, 1e-4, 1e-4);
    }

    #[test]
    fn v3_with_grouped_logits_respects_group_boundaries() {
        // Two deform groups: zero out group 1's taps entirely via a
        // dominant negative pattern and confirm only group-0 channels
        // contribute when the weight is selective.
        let p = DeformConv2dParams {
            conv: crate::conv::Conv2dParams::same(3),
            deform_groups: 2,
        };
        let x = Tensor::randn(&[1, 4, 5, 5], 0.0, 1.0, 305);
        let off = Tensor::zeros(&[1, 36, 5, 5]);
        let logits = Tensor::rand_uniform(&[1, 18, 5, 5], -1.0, 1.0, 306);
        let w = Tensor::randn(&[2, 4, 3, 3], 0.0, 0.4, 307);
        let y = deform_conv2d_v3_ref(&x, &off, &logits, &w, None, &p, OffsetTransform::Identity);
        assert_eq!(y.dims(), &[1, 2, 5, 5]);
        assert!(y.data().iter().any(|&v| v != 0.0));
    }
}

#[cfg(test)]
mod legacy_pinning {
    use super::*;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    /// The shared-scratch forward rewrites must be byte-identical to the
    /// verbatim legacy loops for every family, transform and group layout.
    #[test]
    fn restructured_refs_are_bitwise_identical_to_legacy() {
        let cases = [
            (1usize, 4usize, 3usize, 1usize, 6usize, 6usize),
            (2, 4, 2, 2, 5, 7),
            (1, 6, 5, 3, 4, 4),
        ];
        let transforms = [
            OffsetTransform::Identity,
            OffsetTransform::Bounded(1.25),
            OffsetTransform::BoundedRounded(2.0),
        ];
        for (case, &(n, c_in, c_out, dgroups, h, w)) in cases.iter().enumerate() {
            let p = DeformConv2dParams {
                conv: crate::conv::Conv2dParams::same(3),
                deform_groups: dgroups,
            };
            let seed = 9000 + 17 * case as u64;
            let x = Tensor::randn(&[n, c_in, h, w], 0.0, 1.0, seed);
            let wt = Tensor::randn(&[c_out, c_in, 3, 3], 0.0, 0.4, seed + 1);
            let off = Tensor::rand_uniform(&[n, p.offset_channels(), h, w], -1.6, 1.6, seed + 2);
            let mask = Tensor::rand_uniform(&[n, dgroups * 9, h, w], 0.0, 1.0, seed + 3);
            let logits = Tensor::rand_uniform(&[n, dgroups * 9, h, w], -2.0, 2.0, seed + 4);
            let bias = Tensor::randn(&[c_out], 0.0, 0.1, seed + 5);
            for tr in transforms {
                let v1 = deform_conv2d_ref(&x, &off, &wt, Some(&bias), &p, tr);
                let v1_old = deform_conv2d_ref_legacy(&x, &off, &wt, Some(&bias), &p, tr);
                assert_eq!(bits(&v1), bits(&v1_old), "v1 case {case} {tr:?}");

                let v2 = deform_conv2d_v2_ref(&x, &off, &mask, &wt, None, &p, tr);
                let v2_old = deform_conv2d_v2_ref_legacy(&x, &off, &mask, &wt, None, &p, tr);
                assert_eq!(bits(&v2), bits(&v2_old), "v2 case {case} {tr:?}");

                let v3 = deform_conv2d_v3_ref(&x, &off, &logits, &wt, Some(&bias), &p, tr);
                let v3_old =
                    deform_conv2d_v3_ref_legacy(&x, &off, &logits, &wt, Some(&bias), &p, tr);
                assert_eq!(bits(&v3), bits(&v3_old), "v3 case {case} {tr:?}");
            }
        }
    }
}
