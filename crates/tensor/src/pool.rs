//! Pooling and resampling ops used by the backbones and the FPN neck.

use crate::Tensor;

/// 2×2 max pooling with stride 2 (floor semantics). Returns the pooled tensor
/// and the flat argmax indices (into the input buffer) needed for backward.
pub fn max_pool2x2(x: &Tensor) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = x.shape().nchw();
    let (oh, ow) = (h / 2, w / 2);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut arg = vec![0usize; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx = x.shape().offset4(ni, ci, oy * 2 + dy, ox * 2 + dx);
                            let v = x.data()[idx];
                            if v > best {
                                best = v;
                                best_idx = idx;
                            }
                        }
                    }
                    let o = out.shape().offset4(ni, ci, oy, ox);
                    out.data_mut()[o] = best;
                    arg[o] = best_idx;
                }
            }
        }
    }
    (out, arg)
}

/// Backward of [`max_pool2x2`]: routes each upstream gradient to its argmax.
pub fn max_pool2x2_backward(gy: &Tensor, arg: &[usize], input_dims: &[usize]) -> Tensor {
    let mut gx = Tensor::zeros(input_dims);
    for (g, &idx) in gy.data().iter().zip(arg.iter()) {
        gx.data_mut()[idx] += g;
    }
    gx
}

/// Global average pooling `[N, C, H, W] -> [N, C]`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let hw = (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    for ni in 0..n {
        for ci in 0..c {
            let base = x.shape().offset4(ni, ci, 0, 0);
            out.data_mut()[ni * c + ci] = x.data()[base..base + h * w].iter().sum::<f32>() / hw;
        }
    }
    out
}

/// Backward of [`global_avg_pool`].
pub fn global_avg_pool_backward(gy: &Tensor, input_dims: &[usize]) -> Tensor {
    let mut gx = Tensor::zeros(input_dims);
    let (n, c, h, w) = gx.shape().nchw();
    let inv = 1.0 / (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let g = gy.data()[ni * c + ci] * inv;
            let base = gx.shape().offset4(ni, ci, 0, 0);
            for v in &mut gx.data_mut()[base..base + h * w] {
                *v += g;
            }
        }
    }
    gx
}

/// Nearest-neighbour 2× upsampling, used by the FPN top-down pathway.
pub fn upsample_nearest_2x(x: &Tensor) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let mut out = Tensor::zeros(&[n, c, h * 2, w * 2]);
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..h * 2 {
                for xx in 0..w * 2 {
                    *out.at4_mut(ni, ci, y, xx) = x.at4(ni, ci, y / 2, xx / 2);
                }
            }
        }
    }
    out
}

/// Backward of [`upsample_nearest_2x`]: each input pixel accumulates its 4
/// replicated outputs.
pub fn upsample_nearest_2x_backward(gy: &Tensor) -> Tensor {
    let (n, c, h2, w2) = gy.shape().nchw();
    let (h, w) = (h2 / 2, w2 / 2);
    let mut gx = Tensor::zeros(&[n, c, h, w]);
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..h2 {
                for xx in 0..w2 {
                    *gx.at4_mut(ni, ci, y / 2, xx / 2) += gy.at4(ni, ci, y, xx);
                }
            }
        }
    }
    gx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_max_and_routes_grad() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let (y, arg) = max_pool2x2(&x);
        assert_eq!(y.data(), &[4.0]);
        let gy = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]);
        let gx = max_pool2x2_backward(&gy, &arg, &[1, 1, 2, 2]);
        assert_eq!(gx.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn max_pool_odd_extent_floors() {
        let x = Tensor::ones(&[1, 1, 5, 5]);
        let (y, _) = max_pool2x2(&x);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn gap_averages() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]);
        let y = global_avg_pool(&x);
        assert_eq!(y.data(), &[4.0]);
        let gy = Tensor::from_vec(vec![8.0], &[1, 1]);
        let gx = global_avg_pool_backward(&gy, &[1, 1, 2, 2]);
        assert_eq!(gx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn upsample_round_trip_gradient() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = upsample_nearest_2x(&x);
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        assert_eq!(y.at4(0, 0, 0, 1), 1.0);
        assert_eq!(y.at4(0, 0, 3, 3), 4.0);
        let gx = upsample_nearest_2x_backward(&Tensor::ones(&[1, 1, 4, 4]));
        assert_eq!(gx.data(), &[4.0, 4.0, 4.0, 4.0]);
    }
}
