//! Blocked, rayon-parallel single-precision GEMM.
//!
//! The convolution path (`conv::conv2d`) lowers to `C = A * B` where `A` is
//! the filter matrix and `B` the im2col patch matrix. This GEMM is a simple
//! cache-blocked kernel parallelized over row panels with rayon — not a BLAS
//! competitor, but fast enough to train the mini models in `defcon-models`
//! and, more importantly, deterministic per thread count is *not* required:
//! each output element is accumulated by exactly one task, so results are
//! bitwise reproducible regardless of parallelism.

use defcon_support::par::ParallelSliceMut;

/// Row-panel height processed per rayon task.
const PANEL: usize = 32;
/// K-blocking depth (inner accumulation tile) — sized so an A-panel row block
/// plus a B block stay L1-resident.
const KBLOCK: usize = 256;

/// `c = a * b` where `a` is `m×k`, `b` is `k×n`, `c` is `m×n`, all row-major.
///
/// Panics if slice lengths disagree with the given dimensions.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    c.fill(0.0);

    // Parallelize over disjoint row panels of C; no two tasks write the same
    // output element, so this is race-free by construction.
    c.par_chunks_mut(PANEL * n)
        .enumerate()
        .for_each(|(panel_idx, c_panel)| {
            let row0 = panel_idx * PANEL;
            let rows = c_panel.len() / n;
            for k0 in (0..k).step_by(KBLOCK) {
                let k1 = (k0 + KBLOCK).min(k);
                for r in 0..rows {
                    let a_row = &a[(row0 + r) * k..(row0 + r + 1) * k];
                    let c_row = &mut c_panel[r * n..(r + 1) * n];
                    for kk in k0..k1 {
                        let aik = a_row[kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b[kk * n..(kk + 1) * n];
                        // The compiler auto-vectorizes this saxpy loop.
                        for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        });
}

/// `c = a * b^T` where `a` is `m×k`, `b` is `n×k` (so `b^T` is `k×n`).
///
/// Used by convolution backward passes where the filter matrix must be
/// applied transposed without materializing the transpose.
pub fn gemm_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), n * k, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");

    c.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *cv = acc;
        }
    });
}

/// `c = a^T * b` where `a` is `k×m`, `b` is `k×n`, output `m×n`.
pub fn gemm_at(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    c.fill(0.0);

    c.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        for kk in 0..k {
            let aki = a[kk * m + i];
            if aki == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += aki * bv;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn gemm_matches_naive() {
        let (m, k, n) = (37, 53, 29);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7919) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 104729) % 17) as f32 - 8.0)
            .collect();
        let mut c = vec![0.0; m * n];
        gemm(&a, &b, &mut c, m, k, n);
        let expect = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_identity() {
        let n = 16;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        let mut c = vec![0.0; n * n];
        gemm(&eye, &b, &mut c, n, n, n);
        assert_eq!(c, b);
    }

    #[test]
    fn gemm_bt_matches_gemm_with_transpose() {
        let (m, k, n) = (9, 15, 11);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 5) as f32).collect();
        let b_t: Vec<f32> = (0..n * k).map(|i| (i % 7) as f32 - 3.0).collect();
        // materialize b = (b_t)^T : k x n
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = b_t[j * k + kk];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(&a, &b, &mut c1, m, k, n);
        gemm_bt(&a, &b_t, &mut c2, m, k, n);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_at_matches_gemm_with_transpose() {
        let (m, k, n) = (8, 12, 10);
        let a_t: Vec<f32> = (0..k * m).map(|i| (i % 6) as f32 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 4) as f32).collect();
        let mut a = vec![0.0; m * k];
        for kk in 0..k {
            for i in 0..m {
                a[i * k + kk] = a_t[kk * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(&a, &b, &mut c1, m, k, n);
        gemm_at(&a_t, &b, &mut c2, m, k, n);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_empty_k() {
        let mut c = vec![1.0; 4];
        gemm(&[], &[], &mut c, 2, 0, 2);
        assert_eq!(c, vec![0.0; 4]);
    }
}
