//! Blocked, rayon-parallel single-precision GEMM.
//!
//! The convolution path (`conv::conv2d`) lowers to `C = A * B` where `A` is
//! the filter matrix and `B` the im2col patch matrix. This GEMM is a simple
//! cache-blocked kernel parallelized over row panels with rayon — not a BLAS
//! competitor, but fast enough to train the mini models in `defcon-models`
//! and, more importantly, deterministic per thread count is *not* required:
//! each output element is accumulated by exactly one task, so results are
//! bitwise reproducible regardless of parallelism.

use defcon_support::par::ParallelSliceMut;

/// Row-panel height processed per rayon task.
const PANEL: usize = 32;
/// K-blocking depth (inner accumulation tile) — sized so an A-panel row block
/// plus a B block stay L1-resident.
const KBLOCK: usize = 256;
/// Register-block width of the microkernel: each steady-state pass keeps
/// `NR` output accumulators in a fixed-size array (registers after
/// vectorization) and runs the k loop over them with no bounds checks.
pub(crate) const NR: usize = 8;

/// The shared register-blocked saxpy microkernel:
/// `c_row += Σ_kk a_col[kk] · b_panel[kk·n ..][..n]` over `a_col.len()` rows
/// of `b_panel`.
///
/// Steady state walks `c_row` in `NR`-wide register blocks: the block is
/// loaded into a fixed `[f32; NR]`, every k contributes through a fully
/// unrolled bounds-check-free inner loop, and the block stores back once.
/// The remainder columns fall through to a scalar loop. Per output element
/// the accumulation is the identical ascending-k product sequence of the
/// legacy saxpy form — including the `a == 0.0` skip, which both preserves
/// sparse-filter throughput and keeps `-0.0` contributions out of the sum —
/// so results are bit-identical at any blocking width.
#[inline]
pub(crate) fn saxpy_panel(a_col: &[f32], b_panel: &[f32], c_row: &mut [f32], n: usize) {
    let kb = a_col.len();
    let mut j0 = 0usize;
    while j0 + NR <= n {
        let mut acc = [0.0f32; NR];
        acc.copy_from_slice(&c_row[j0..j0 + NR]);
        for kk in 0..kb {
            let aik = a_col[kk];
            if aik == 0.0 {
                continue;
            }
            let b_blk = &b_panel[kk * n + j0..kk * n + j0 + NR];
            for jj in 0..NR {
                acc[jj] += aik * b_blk[jj];
            }
        }
        c_row[j0..j0 + NR].copy_from_slice(&acc);
        j0 += NR;
    }
    if j0 < n {
        for kk in 0..kb {
            let aik = a_col[kk];
            if aik == 0.0 {
                continue;
            }
            let b_row = &b_panel[kk * n..(kk + 1) * n];
            for j in j0..n {
                c_row[j] += aik * b_row[j];
            }
        }
    }
}

/// `c = a * b` where `a` is `m×k`, `b` is `k×n`, `c` is `m×n`, all row-major.
///
/// Panics if slice lengths disagree with the given dimensions.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    c.fill(0.0);

    // Parallelize over disjoint row panels of C; no two tasks write the same
    // output element, so this is race-free by construction. Each (k-block,
    // row) pair runs the register-blocked microkernel.
    c.par_chunks_mut(PANEL * n)
        .enumerate()
        .for_each(|(panel_idx, c_panel)| {
            let row0 = panel_idx * PANEL;
            let rows = c_panel.len() / n;
            for k0 in (0..k).step_by(KBLOCK) {
                let k1 = (k0 + KBLOCK).min(k);
                for r in 0..rows {
                    let a_row = &a[(row0 + r) * k..(row0 + r + 1) * k];
                    let c_row = &mut c_panel[r * n..(r + 1) * n];
                    saxpy_panel(&a_row[k0..k1], &b[k0 * n..k1 * n], c_row, n);
                }
            }
        });
}

/// Verbatim pre-rewrite `gemm` (plain saxpy inner loop, no register
/// blocking). Oracle for the bitwise-pinning tests and the hot-path bench:
/// [`gemm`] must match it bit for bit on every input.
pub fn gemm_legacy(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    c.fill(0.0);

    c.par_chunks_mut(PANEL * n)
        .enumerate()
        .for_each(|(panel_idx, c_panel)| {
            let row0 = panel_idx * PANEL;
            let rows = c_panel.len() / n;
            for k0 in (0..k).step_by(KBLOCK) {
                let k1 = (k0 + KBLOCK).min(k);
                for r in 0..rows {
                    let a_row = &a[(row0 + r) * k..(row0 + r + 1) * k];
                    let c_row = &mut c_panel[r * n..(r + 1) * n];
                    for kk in k0..k1 {
                        let aik = a_row[kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b[kk * n..(kk + 1) * n];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        });
}

/// Single-accumulator ascending-k dot product: the per-element kernel of
/// [`gemm_bt`]'s tail and of the deformable reference paths' per-pixel
/// aggregation (`sample::deform_conv2d_ref` and friends dot each output
/// channel's weight row against the pixel's shared sample scratch). One
/// accumulator, ascending index — the order every bitwise gate in the
/// workspace pins. Never split this into lanes: that changes the bits.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (av, bv) in a.iter().zip(b.iter()) {
        acc += av * bv;
    }
    acc
}

/// `c = a * b^T` where `a` is `m×k`, `b` is `n×k` (so `b^T` is `k×n`).
///
/// Used by convolution backward passes where the filter matrix must be
/// applied transposed without materializing the transpose.
///
/// Register-blocked over `NR` output columns: the A row streams through
/// once per column block instead of once per column, and the `NR`
/// independent dot accumulators vectorize. Each output element is still one
/// ascending-k dot product — a single accumulator per element, never split —
/// so results are bit-identical to the per-column legacy form.
pub fn gemm_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), n * k, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");

    c.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        let a_row = &a[i * k..(i + 1) * k];
        let mut j0 = 0usize;
        while j0 + NR <= n {
            let mut acc = [0.0f32; NR];
            for (kk, &av) in a_row.iter().enumerate() {
                for jj in 0..NR {
                    acc[jj] += av * b[(j0 + jj) * k + kk];
                }
            }
            c_row[j0..j0 + NR].copy_from_slice(&acc);
            j0 += NR;
        }
        for (j, cv) in c_row.iter_mut().enumerate().skip(j0) {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *cv = acc;
        }
    });
}

/// Verbatim pre-rewrite `gemm_bt` (one dot product per output column).
pub fn gemm_bt_legacy(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), n * k, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");

    c.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *cv = acc;
        }
    });
}

/// `c = a^T * b` where `a` is `k×m`, `b` is `k×n`, output `m×n`.
///
/// Same microkernel shape as [`gemm`] with the A element gathered through
/// its transposed stride; bit-identical to the legacy loop.
pub fn gemm_at(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    c.fill(0.0);

    c.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        let mut j0 = 0usize;
        while j0 + NR <= n {
            let mut acc = [0.0f32; NR];
            acc.copy_from_slice(&c_row[j0..j0 + NR]);
            for kk in 0..k {
                let aki = a[kk * m + i];
                if aki == 0.0 {
                    continue;
                }
                let b_blk = &b[kk * n + j0..kk * n + j0 + NR];
                for jj in 0..NR {
                    acc[jj] += aki * b_blk[jj];
                }
            }
            c_row[j0..j0 + NR].copy_from_slice(&acc);
            j0 += NR;
        }
        if j0 < n {
            for kk in 0..k {
                let aki = a[kk * m + i];
                if aki == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for j in j0..n {
                    c_row[j] += aki * b_row[j];
                }
            }
        }
    });
}

/// Verbatim pre-rewrite `gemm_at`.
pub fn gemm_at_legacy(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    assert_eq!(c.len(), m * n, "C length mismatch");
    c.fill(0.0);

    c.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        for kk in 0..k {
            let aki = a[kk * m + i];
            if aki == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += aki * bv;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn gemm_matches_naive() {
        let (m, k, n) = (37, 53, 29);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7919) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 104729) % 17) as f32 - 8.0)
            .collect();
        let mut c = vec![0.0; m * n];
        gemm(&a, &b, &mut c, m, k, n);
        let expect = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_identity() {
        let n = 16;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        let mut c = vec![0.0; n * n];
        gemm(&eye, &b, &mut c, n, n, n);
        assert_eq!(c, b);
    }

    #[test]
    fn gemm_bt_matches_gemm_with_transpose() {
        let (m, k, n) = (9, 15, 11);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 5) as f32).collect();
        let b_t: Vec<f32> = (0..n * k).map(|i| (i % 7) as f32 - 3.0).collect();
        // materialize b = (b_t)^T : k x n
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = b_t[j * k + kk];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(&a, &b, &mut c1, m, k, n);
        gemm_bt(&a, &b_t, &mut c2, m, k, n);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_at_matches_gemm_with_transpose() {
        let (m, k, n) = (8, 12, 10);
        let a_t: Vec<f32> = (0..k * m).map(|i| (i % 6) as f32 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 4) as f32).collect();
        let mut a = vec![0.0; m * k];
        for kk in 0..k {
            for i in 0..m {
                a[i * k + kk] = a_t[kk * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(&a, &b, &mut c1, m, k, n);
        gemm_at(&a_t, &b, &mut c2, m, k, n);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_empty_k() {
        let mut c = vec![1.0; 4];
        gemm(&[], &[], &mut c, 2, 0, 2);
        assert_eq!(c, vec![0.0; 4]);
    }

    /// Pseudo-random matrix with interspersed exact zeros so the `== 0.0`
    /// skip path is exercised.
    fn sprinkle(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
                if h % 7 == 0 {
                    0.0
                } else {
                    ((h % 4096) as f32 - 2048.0) / 512.0
                }
            })
            .collect()
    }

    #[test]
    fn prop_blocked_gemms_are_bitwise_identical_to_legacy() {
        use defcon_support::prop::{self, Config};
        use defcon_support::rng::Rng;

        // The register-blocked microkernels accumulate the identical
        // ascending-k product sequence per output element as the legacy
        // loops, so every variant must agree to the bit — including
        // odd extents that exercise the scalar tails and dimensions below
        // one register block.
        prop::check(
            "blocked gemm/bt/at ≡ legacy bitwise",
            &Config::cases(24),
            |rng| {
                let m = rng.gen_range(1usize..40);
                let k = rng.gen_range(0usize..70);
                let n = rng.gen_range(1usize..40);
                (m, k, n, rng.gen_range(0u64..u64::MAX))
            },
            |&(m, k, n, seed)| {
                let a = sprinkle(m * k, seed);
                let b = sprinkle(k * n, seed ^ 0xABCD);
                let bt = sprinkle(n * k, seed ^ 0x1234);
                let at = sprinkle(k * m, seed ^ 0x5678);
                let (mut c_new, mut c_old) = (vec![0.0f32; m * n], vec![0.0f32; m * n]);
                gemm(&a, &b, &mut c_new, m, k, n);
                gemm_legacy(&a, &b, &mut c_old, m, k, n);
                defcon_support::prop_assert!(
                    c_new
                        .iter()
                        .zip(&c_old)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "gemm diverged from legacy at {m}x{k}x{n}"
                );
                gemm_bt(&a, &bt, &mut c_new, m, k, n);
                gemm_bt_legacy(&a, &bt, &mut c_old, m, k, n);
                defcon_support::prop_assert!(
                    c_new
                        .iter()
                        .zip(&c_old)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "gemm_bt diverged from legacy at {m}x{k}x{n}"
                );
                gemm_at(&at, &b, &mut c_new, m, k, n);
                gemm_at_legacy(&at, &b, &mut c_old, m, k, n);
                defcon_support::prop_assert!(
                    c_new
                        .iter()
                        .zip(&c_old)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "gemm_at diverged from legacy at {m}x{k}x{n}"
                );
                Ok(())
            },
        );
    }
}
