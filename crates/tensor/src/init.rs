//! Weight initialization schemes (seeded, reproducible).

use crate::tensor::sample_standard_normal;
use crate::Tensor;
use defcon_support::rng::{SeedableRng, StdRng};

/// Kaiming/He normal initialization for conv weights `[C_out, C_in, k, k]`:
/// `std = sqrt(2 / fan_in)` with `fan_in = C_in · k · k`. Appropriate for
/// ReLU networks.
pub fn kaiming_conv(dims: &[usize], seed: u64) -> Tensor {
    assert_eq!(dims.len(), 4, "kaiming_conv expects [C_out, C_in, k, k]");
    let fan_in = (dims[1] * dims[2] * dims[3]) as f32;
    let std = (2.0 / fan_in).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = dims.iter().product();
    Tensor::from_vec(
        (0..n)
            .map(|_| std * sample_standard_normal(&mut rng))
            .collect(),
        dims,
    )
}

/// Xavier/Glorot normal initialization for linear weights `[out, in]`.
pub fn xavier_linear(dims: &[usize], seed: u64) -> Tensor {
    assert_eq!(dims.len(), 2, "xavier_linear expects [out, in]");
    let std = (2.0 / (dims[0] + dims[1]) as f32).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = dims[0] * dims[1];
    Tensor::from_vec(
        (0..n)
            .map(|_| std * sample_standard_normal(&mut rng))
            .collect(),
        dims,
    )
}

/// Zero initialization — the standard choice for the *offset-predicting*
/// convolution of a deformable layer, so training starts from the rigid grid
/// (Dai et al. initialize offset branches to zero).
pub fn zeros(dims: &[usize]) -> Tensor {
    Tensor::zeros(dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let a = kaiming_conv(&[64, 16, 3, 3], 1);
        let var_a = a.sq_norm() / a.numel() as f32;
        let expect = 2.0 / (16.0 * 9.0);
        assert!(
            (var_a - expect).abs() < 0.2 * expect,
            "var {var_a} vs {expect}"
        );
    }

    #[test]
    fn xavier_reasonable_variance() {
        let t = xavier_linear(&[128, 256], 2);
        let var = t.sq_norm() / t.numel() as f32;
        let expect = 2.0 / 384.0;
        assert!((var - expect).abs() < 0.3 * expect);
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(
            kaiming_conv(&[4, 4, 3, 3], 9),
            kaiming_conv(&[4, 4, 3, 3], 9)
        );
    }
}
