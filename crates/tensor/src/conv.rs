//! Regular, depthwise and pointwise 2-D convolutions (im2col + GEMM), plus
//! the im2col/col2im lowering used by the autograd backward passes.

use crate::gemm::{gemm, gemm_at, gemm_bt};
use crate::shape::conv_out_dim;
use crate::Tensor;
use defcon_support::par::ParallelSliceMut;

/// Hyper-parameters of a 2-D convolution window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride along both axes.
    pub stride: usize,
    /// Zero padding along both axes.
    pub pad: usize,
    /// Dilation along both axes.
    pub dilation: usize,
}

impl Conv2dParams {
    /// "Same" padding for odd kernels at stride 1 (`pad = k/2`).
    pub fn same(kernel: usize) -> Self {
        Conv2dParams {
            kernel,
            stride: 1,
            pad: kernel / 2,
            dilation: 1,
        }
    }

    /// Stride-2 downsampling variant of [`Conv2dParams::same`].
    pub fn downsample(kernel: usize) -> Self {
        Conv2dParams {
            kernel,
            stride: 2,
            pad: kernel / 2,
            dilation: 1,
        }
    }

    /// Output spatial dims for an input of `h × w`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out_dim(h, self.kernel, self.stride, self.pad, self.dilation),
            conv_out_dim(w, self.kernel, self.stride, self.pad, self.dilation),
        )
    }
}

/// Lowers one batch item to the im2col patch matrix of shape
/// `[C*k*k, outH*outW]` (row-major, flattened into `out`).
///
/// Row `(c*k + ki)*k + kj` holds, for every output position, the input pixel
/// that tap `(ki, kj)` of channel `c` reads (0 outside the image).
pub fn im2col(x: &Tensor, n: usize, p: &Conv2dParams, out: &mut [f32]) {
    let (_, c_in, h, w) = x.shape().nchw();
    let (oh, ow) = p.out_hw(h, w);
    let cols = oh * ow;
    assert_eq!(out.len(), c_in * p.kernel * p.kernel * cols);

    out.par_chunks_mut(p.kernel * p.kernel * cols)
        .enumerate()
        .for_each(|(c, chunk)| {
            for ki in 0..p.kernel {
                for kj in 0..p.kernel {
                    let row = (ki * p.kernel + kj) * cols;
                    for oy in 0..oh {
                        let iy = (oy * p.stride + ki * p.dilation) as isize - p.pad as isize;
                        for ox in 0..ow {
                            let ix = (ox * p.stride + kj * p.dilation) as isize - p.pad as isize;
                            let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                x.at4(n, c, iy as usize, ix as usize)
                            } else {
                                0.0
                            };
                            chunk[row + oy * ow + ox] = v;
                        }
                    }
                }
            }
        });
}

/// Scatters an im2col-shaped gradient matrix (`[C*k*k, outH*outW]`) back into
/// an input-shaped gradient (`[C, H, W]` for batch item `n` of `gx`),
/// accumulating overlapping contributions. The adjoint of [`im2col`].
pub fn col2im(cols_mat: &[f32], gx: &mut Tensor, n: usize, p: &Conv2dParams) {
    let (_, c_in, h, w) = gx.shape().nchw();
    let (oh, ow) = p.out_hw(h, w);
    let cols = oh * ow;
    assert_eq!(cols_mat.len(), c_in * p.kernel * p.kernel * cols);

    for c in 0..c_in {
        for ki in 0..p.kernel {
            for kj in 0..p.kernel {
                let row = ((c * p.kernel + ki) * p.kernel + kj) * cols;
                for oy in 0..oh {
                    let iy = (oy * p.stride + ki * p.dilation) as isize - p.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * p.stride + kj * p.dilation) as isize - p.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        *gx.at4_mut(n, c, iy as usize, ix as usize) += cols_mat[row + oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Regular 2-D convolution.
///
/// * `x`: `[N, C_in, H, W]`
/// * `weight`: `[C_out, C_in, k, k]`
/// * `bias`: optional `[C_out]`
///
/// Returns `[N, C_out, outH, outW]`.
pub fn conv2d(x: &Tensor, weight: &Tensor, bias: Option<&Tensor>, p: &Conv2dParams) -> Tensor {
    let (n, c_in, h, w) = x.shape().nchw();
    let (c_out, wc_in, kh, kw) = weight.shape().nchw();
    assert_eq!(
        c_in, wc_in,
        "conv2d channel mismatch: input {c_in}, weight {wc_in}"
    );
    assert_eq!(
        kh, p.kernel,
        "weight kernel {kh} != params kernel {}",
        p.kernel
    );
    assert_eq!(kh, kw, "only square kernels supported");
    let (oh, ow) = p.out_hw(h, w);
    let cols = oh * ow;
    let krows = c_in * kh * kw;

    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    let mut patch = vec![0.0f32; krows * cols];
    for ni in 0..n {
        im2col(x, ni, p, &mut patch);
        let dst = &mut out.data_mut()[ni * c_out * cols..(ni + 1) * c_out * cols];
        gemm(weight.data(), &patch, dst, c_out, krows, cols);
    }
    if let Some(b) = bias {
        assert_eq!(b.numel(), c_out, "bias length mismatch");
        add_channel_bias(&mut out, b);
    }
    out
}

/// Gradients of [`conv2d`] w.r.t. input, weight and bias.
///
/// Returns `(grad_x, grad_w, grad_b)` given upstream gradient `gy` of shape
/// `[N, C_out, outH, outW]`.
pub fn conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    gy: &Tensor,
    p: &Conv2dParams,
) -> (Tensor, Tensor, Tensor) {
    let (n, c_in, h, w) = x.shape().nchw();
    let (c_out, _, kh, kw) = weight.shape().nchw();
    let (oh, ow) = p.out_hw(h, w);
    let cols = oh * ow;
    let krows = c_in * kh * kw;

    let mut gx = Tensor::zeros(&[n, c_in, h, w]);
    let mut gw = Tensor::zeros(weight.dims());
    let mut gb = Tensor::zeros(&[c_out]);

    let mut patch = vec![0.0f32; krows * cols];
    let mut gpatch = vec![0.0f32; krows * cols];
    let mut gw_item = vec![0.0f32; c_out * krows];
    for ni in 0..n {
        let gy_item = &gy.data()[ni * c_out * cols..(ni + 1) * c_out * cols];

        // grad bias: sum of gy over spatial positions.
        for co in 0..c_out {
            gb.data_mut()[co] += gy_item[co * cols..(co + 1) * cols].iter().sum::<f32>();
        }

        // grad weight: gy (c_out×cols) * patch^T (cols×krows).
        im2col(x, ni, p, &mut patch);
        gemm_bt(gy_item, &patch, &mut gw_item, c_out, cols, krows);
        for (g, v) in gw.data_mut().iter_mut().zip(gw_item.iter()) {
            *g += v;
        }

        // grad input: W^T (krows×c_out) * gy (c_out×cols), scattered by col2im.
        gemm_at(weight.data(), gy_item, &mut gpatch, krows, c_out, cols);
        col2im(&gpatch, &mut gx, ni, p);
    }
    (gx, gw, gb)
}

/// Depthwise 2-D convolution: each input channel is convolved with its own
/// `k×k` filter. `weight` is `[C, 1, k, k]`; returns `[N, C, outH, outW]`.
pub fn depthwise_conv2d(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: &Conv2dParams,
) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let (wc, one, kh, kw) = weight.shape().nchw();
    assert_eq!(
        wc, c,
        "depthwise weight channels {wc} != input channels {c}"
    );
    assert_eq!(one, 1, "depthwise weight must be [C,1,k,k]");
    assert_eq!((kh, kw), (p.kernel, p.kernel));
    let (oh, ow) = p.out_hw(h, w);

    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let shape = x.shape().clone();
    let xd = x.data();
    let wd = weight.data();
    out.data_mut()
        .par_chunks_mut(oh * ow)
        .enumerate()
        .for_each(|(nc, dst)| {
            let (ni, ci) = (nc / c, nc % c);
            let wslice = &wd[ci * kh * kw..(ci + 1) * kh * kw];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ki in 0..kh {
                        let iy = (oy * p.stride + ki * p.dilation) as isize - p.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kj in 0..kw {
                            let ix = (ox * p.stride + kj * p.dilation) as isize - p.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += wslice[ki * kw + kj]
                                * xd[shape.offset4(ni, ci, iy as usize, ix as usize)];
                        }
                    }
                    dst[oy * ow + ox] = acc;
                }
            }
        });
    if let Some(b) = bias {
        add_channel_bias(&mut out, b);
    }
    out
}

/// Gradients of [`depthwise_conv2d`]: `(grad_x, grad_w, grad_b)`.
pub fn depthwise_conv2d_backward(
    x: &Tensor,
    weight: &Tensor,
    gy: &Tensor,
    p: &Conv2dParams,
) -> (Tensor, Tensor, Tensor) {
    let (n, c, h, w) = x.shape().nchw();
    let (_, _, kh, kw) = weight.shape().nchw();
    let (oh, ow) = p.out_hw(h, w);

    let mut gx = Tensor::zeros(&[n, c, h, w]);
    let mut gw = Tensor::zeros(weight.dims());
    let mut gb = Tensor::zeros(&[c]);

    for ni in 0..n {
        for ci in 0..c {
            let wslice_base = ci * kh * kw;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gy.at4(ni, ci, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    gb.data_mut()[ci] += g;
                    for ki in 0..kh {
                        let iy = (oy * p.stride + ki * p.dilation) as isize - p.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kj in 0..kw {
                            let ix = (ox * p.stride + kj * p.dilation) as isize - p.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let xv = x.at4(ni, ci, iy as usize, ix as usize);
                            gw.data_mut()[wslice_base + ki * kw + kj] += g * xv;
                            *gx.at4_mut(ni, ci, iy as usize, ix as usize) +=
                                g * weight.data()[wslice_base + ki * kw + kj];
                        }
                    }
                }
            }
        }
    }
    (gx, gw, gb)
}

/// Pointwise (1×1) convolution: a per-pixel linear map over channels.
/// `weight` is `[C_out, C_in, 1, 1]`.
pub fn pointwise_conv2d(x: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Tensor {
    let (n, c_in, h, w) = x.shape().nchw();
    let (c_out, wc_in, kh, kw) = weight.shape().nchw();
    assert_eq!(
        (wc_in, kh, kw),
        (c_in, 1, 1),
        "pointwise weight must be [C_out, C_in, 1, 1]"
    );
    let cols = h * w;
    let mut out = Tensor::zeros(&[n, c_out, h, w]);
    for ni in 0..n {
        let src = &x.data()[ni * c_in * cols..(ni + 1) * c_in * cols];
        let dst = &mut out.data_mut()[ni * c_out * cols..(ni + 1) * c_out * cols];
        gemm(weight.data(), src, dst, c_out, c_in, cols);
    }
    if let Some(b) = bias {
        add_channel_bias(&mut out, b);
    }
    out
}

/// Adds a per-channel bias to an NCHW tensor in place.
pub fn add_channel_bias(x: &mut Tensor, bias: &Tensor) {
    let (n, c, h, w) = x.shape().nchw();
    assert_eq!(bias.numel(), c);
    let hw = h * w;
    for ni in 0..n {
        for ci in 0..c {
            let b = bias.data()[ci];
            let base = (ni * c + ci) * hw;
            for v in &mut x.data_mut()[base..base + hw] {
                *v += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    /// Scalar reference conv for validating the im2col path.
    fn conv2d_naive(x: &Tensor, weight: &Tensor, p: &Conv2dParams) -> Tensor {
        let (n, c_in, h, w) = x.shape().nchw();
        let (c_out, _, k, _) = weight.shape().nchw();
        let (oh, ow) = p.out_hw(h, w);
        let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
        for ni in 0..n {
            for co in 0..c_out {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..c_in {
                            for ki in 0..k {
                                for kj in 0..k {
                                    let iy =
                                        (oy * p.stride + ki * p.dilation) as isize - p.pad as isize;
                                    let ix =
                                        (ox * p.stride + kj * p.dilation) as isize - p.pad as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                        acc += weight.at4(co, ci, ki, kj)
                                            * x.at4(ni, ci, iy as usize, ix as usize);
                                    }
                                }
                            }
                        }
                        *out.at4_mut(ni, co, oy, ox) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn conv2d_matches_naive_same() {
        let x = Tensor::randn(&[2, 3, 9, 7], 0.0, 1.0, 1);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.5, 2);
        let p = Conv2dParams::same(3);
        assert_close(
            &conv2d(&x, &w, None, &p),
            &conv2d_naive(&x, &w, &p),
            1e-4,
            1e-4,
        );
    }

    #[test]
    fn conv2d_matches_naive_strided_dilated() {
        let x = Tensor::randn(&[1, 2, 13, 11], 0.0, 1.0, 3);
        let w = Tensor::randn(&[5, 2, 3, 3], 0.0, 0.5, 4);
        let p = Conv2dParams {
            kernel: 3,
            stride: 2,
            pad: 2,
            dilation: 2,
        };
        assert_close(
            &conv2d(&x, &w, None, &p),
            &conv2d_naive(&x, &w, &p),
            1e-4,
            1e-4,
        );
    }

    #[test]
    fn conv2d_bias_applied_per_channel() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::zeros(&[2, 1, 3, 3]);
        let b = Tensor::from_vec(vec![1.5, -2.0], &[2]);
        let y = conv2d(&x, &w, Some(&b), &Conv2dParams::same(3));
        assert_eq!(y.at4(0, 0, 1, 1), 1.5);
        assert_eq!(y.at4(0, 1, 2, 2), -2.0);
    }

    #[test]
    fn downsample_halves_extent() {
        let x = Tensor::randn(&[1, 2, 16, 16], 0.0, 1.0, 5);
        let w = Tensor::randn(&[2, 2, 3, 3], 0.0, 0.5, 6);
        let y = conv2d(&x, &w, None, &Conv2dParams::downsample(3));
        assert_eq!(y.dims(), &[1, 2, 8, 8]);
    }

    #[test]
    fn depthwise_matches_grouped_naive() {
        let x = Tensor::randn(&[2, 4, 8, 8], 0.0, 1.0, 7);
        let w = Tensor::randn(&[4, 1, 3, 3], 0.0, 0.5, 8);
        let p = Conv2dParams::same(3);
        let y = depthwise_conv2d(&x, &w, None, &p);
        // Build equivalent full conv weight with zeros off the diagonal groups.
        let mut wf = Tensor::zeros(&[4, 4, 3, 3]);
        for c in 0..4 {
            for ki in 0..3 {
                for kj in 0..3 {
                    *wf.at4_mut(c, c, ki, kj) = w.at4(c, 0, ki, kj);
                }
            }
        }
        assert_close(&y, &conv2d(&x, &wf, None, &p), 1e-4, 1e-4);
    }

    #[test]
    fn pointwise_matches_full_conv_k1() {
        let x = Tensor::randn(&[2, 3, 5, 5], 0.0, 1.0, 9);
        let w = Tensor::randn(&[6, 3, 1, 1], 0.0, 0.5, 10);
        let p = Conv2dParams {
            kernel: 1,
            stride: 1,
            pad: 0,
            dilation: 1,
        };
        assert_close(
            &pointwise_conv2d(&x, &w, None),
            &conv2d(&x, &w, None, &p),
            1e-4,
            1e-4,
        );
    }

    /// Central-difference check of conv2d_backward.
    #[test]
    fn conv2d_backward_matches_finite_difference() {
        let p = Conv2dParams::same(3);
        let x = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, 11);
        let w = Tensor::randn(&[3, 2, 3, 3], 0.0, 0.5, 12);
        // Loss = sum(conv(x, w)); gy = ones.
        let y = conv2d(&x, &w, None, &p);
        let gy = Tensor::ones(y.dims());
        let (gx, gw, gb) = conv2d_backward(&x, &w, &gy, &p);
        assert_eq!(gb.numel(), 3);

        let eps = 1e-2f32;
        for &idx in &[0usize, 7, 23, 49] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd =
                (conv2d(&xp, &w, None, &p).sum() - conv2d(&xm, &w, None, &p).sum()) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 2e-2,
                "gx[{idx}]: fd {fd} vs {}",
                gx.data()[idx]
            );
        }
        for &idx in &[0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fd =
                (conv2d(&x, &wp, None, &p).sum() - conv2d(&x, &wm, None, &p).sum()) / (2.0 * eps);
            assert!(
                (fd - gw.data()[idx]).abs() < 2e-2,
                "gw[{idx}]: fd {fd} vs {}",
                gw.data()[idx]
            );
        }
    }

    #[test]
    fn depthwise_backward_matches_finite_difference() {
        let p = Conv2dParams::downsample(3);
        let x = Tensor::randn(&[1, 3, 6, 6], 0.0, 1.0, 13);
        let w = Tensor::randn(&[3, 1, 3, 3], 0.0, 0.5, 14);
        let y = depthwise_conv2d(&x, &w, None, &p);
        let gy = Tensor::ones(y.dims());
        let (gx, gw, _) = depthwise_conv2d_backward(&x, &w, &gy, &p);

        let eps = 1e-2f32;
        for &idx in &[0usize, 13, 41, 100] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (depthwise_conv2d(&xp, &w, None, &p).sum()
                - depthwise_conv2d(&xm, &w, None, &p).sum())
                / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 2e-2,
                "gx[{idx}]: fd {fd} vs {}",
                gx.data()[idx]
            );
        }
        for idx in [0usize, 8, 20] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fd = (depthwise_conv2d(&x, &wp, None, &p).sum()
                - depthwise_conv2d(&x, &wm, None, &p).sum())
                / (2.0 * eps);
            assert!(
                (fd - gw.data()[idx]).abs() < 2e-2,
                "gw[{idx}]: fd {fd} vs {}",
                gw.data()[idx]
            );
        }
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity.
        let p = Conv2dParams {
            kernel: 3,
            stride: 2,
            pad: 1,
            dilation: 1,
        };
        let x = Tensor::randn(&[1, 2, 7, 7], 0.0, 1.0, 15);
        let (oh, ow) = p.out_hw(7, 7);
        let rows = 2 * 9 * oh * ow;
        let mut cols = vec![0.0f32; rows];
        im2col(&x, 0, &p, &mut cols);
        let y: Vec<f32> = (0..rows).map(|i| ((i * 31) % 11) as f32 - 5.0).collect();
        let lhs: f32 = cols.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let mut gx = Tensor::zeros(&[1, 2, 7, 7]);
        col2im(&y, &mut gx, 0, &p);
        let rhs: f32 = gx
            .data()
            .iter()
            .zip(x.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }
}
