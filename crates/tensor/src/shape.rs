//! Shape bookkeeping: dimension vectors, strides and NCHW helpers.

use defcon_support::json::{FromJson, Json, JsonError, ToJson};

/// A tensor shape: a list of dimension extents, outermost first.
///
/// Shapes are value types — cheap to clone, compared structurally.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Builds a shape from a dimension slice. Empty slices denote scalars.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Interprets the shape as `[N, C, H, W]`. Panics unless rank == 4.
    pub fn nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(
            self.rank(),
            4,
            "expected NCHW tensor, got rank {}",
            self.rank()
        );
        (self.0[0], self.0[1], self.0[2], self.0[3])
    }

    /// Flat row-major offset of a 4-D index into this shape.
    #[inline]
    pub fn offset4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.rank(), 4);
        ((n * self.0[1] + c) * self.0[2] + h) * self.0[3] + w
    }
}

impl ToJson for Shape {
    fn to_json(&self) -> Json {
        Json::Arr(self.0.iter().map(|&d| Json::from(d)).collect())
    }
}

impl FromJson for Shape {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let items = j
            .as_arr()
            .ok_or_else(|| JsonError::msg("shape must be a JSON array"))?;
        let dims = items
            .iter()
            .map(|d| {
                d.as_usize()
                    .ok_or_else(|| JsonError::msg("shape dims must be non-negative integers"))
            })
            .collect::<Result<Vec<usize>, _>>()?;
        Ok(Shape(dims))
    }
}

impl From<&[usize]> for Shape {
    fn from(d: &[usize]) -> Self {
        Shape::new(d)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Output spatial extent of a convolution/pooling window along one axis.
///
/// `floor((input + 2*pad - dilation*(kernel-1) - 1) / stride) + 1`, the same
/// formula PyTorch documents for `Conv2d`.
#[inline]
pub fn conv_out_dim(
    input: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    dilation: usize,
) -> usize {
    let eff = dilation * (kernel - 1) + 1;
    debug_assert!(input + 2 * pad >= eff, "window larger than padded input");
    (input + 2 * pad - eff) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4, 5]);
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
        assert_eq!(s.numel(), 120);
    }

    #[test]
    fn offset4_matches_strides() {
        let s = Shape::new(&[2, 3, 4, 5]);
        let st = s.strides();
        assert_eq!(
            s.offset4(1, 2, 3, 4),
            st[0] + 2 * st[1] + 3 * st[2] + 4 * st[3]
        );
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn conv_out_dim_same_padding() {
        // 3x3 kernel, stride 1, pad 1 keeps spatial extent.
        assert_eq!(conv_out_dim(17, 3, 1, 1, 1), 17);
        // stride-2 downsampling halves (rounding as PyTorch does).
        assert_eq!(conv_out_dim(138, 3, 2, 1, 1), 69);
        assert_eq!(conv_out_dim(69, 3, 2, 1, 1), 35);
        assert_eq!(conv_out_dim(35, 3, 2, 1, 1), 18);
    }

    #[test]
    fn conv_out_dim_dilation() {
        // dilation-2 3x3 has effective extent 5.
        assert_eq!(conv_out_dim(10, 3, 1, 2, 2), 10);
        assert_eq!(conv_out_dim(10, 3, 1, 0, 2), 6);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[1, 2]).to_string(), "[1, 2]");
    }

    #[test]
    fn json_round_trip() {
        let s = Shape::new(&[2, 3, 4, 5]);
        let j = s.to_json();
        assert_eq!(j.to_string(), "[2,3,4,5]");
        assert_eq!(
            Shape::from_json(&Json::parse(&j.to_string()).unwrap()).unwrap(),
            s
        );
        assert!(Shape::from_json(&Json::parse("[1,-2]").unwrap()).is_err());
        assert!(Shape::from_json(&Json::parse("{}").unwrap()).is_err());
    }
}
