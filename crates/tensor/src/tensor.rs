//! The dense `f32` tensor type.

use crate::shape::Shape;
use defcon_support::rng::{Rng, SeedableRng, StdRng};

/// A dense, row-major, `f32` tensor.
///
/// `Tensor` owns its storage (`Vec<f32>`). It is the unit of exchange between
/// every crate in the workspace: the autograd tape stores `Tensor`s in its
/// nodes, the simulator kernels read and write `Tensor`s, and the model zoo
/// moves activations around as `Tensor`s.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// A tensor of zeros with the given dims.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// A tensor of ones with the given dims.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![1.0; shape.numel()],
            shape,
        }
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Wraps an existing buffer. Panics if `data.len()` does not match the
    /// shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} != shape {} numel",
            data.len(),
            shape
        );
        Tensor { data, shape }
    }

    /// Gaussian-initialized tensor (`mean`, `std`) from a seeded RNG, for
    /// reproducible tests and experiments.
    pub fn randn(dims: &[usize], mean: f32, std: f32, seed: u64) -> Self {
        let shape = Shape::new(dims);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.numel())
            .map(|_| mean + std * sample_standard_normal(&mut rng))
            .collect();
        Tensor { data, shape }
    }

    /// Uniform-initialized tensor in `[lo, hi)` from a seeded RNG.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, seed: u64) -> Self {
        let shape = Shape::new(dims);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { data, shape }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The shape object.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Read-only view of the backing buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by 4-D index (NCHW tensors).
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.offset4(n, c, h, w)]
    }

    /// Mutable element access by 4-D index.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let off = self.shape.offset4(n, c, h, w);
        &mut self.data[off]
    }

    /// Returns a tensor with the same data but a new shape of equal numel.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape {} -> {} changes element count",
            self.shape,
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape,
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Elementwise binary op; shapes must match exactly.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.dims(), other.dims(), "zip shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// `self + other`, elementwise.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// `self - other`, elementwise.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// `self * other`, elementwise (Hadamard).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `NEG_INFINITY` for empty tensors.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Extracts one batch item `[1, C, H, W]` from an NCHW tensor.
    pub fn slice_batch(&self, n: usize) -> Tensor {
        let (nn, c, h, w) = self.shape.nchw();
        assert!(n < nn, "batch index {n} out of range {nn}");
        let stride = c * h * w;
        Tensor::from_vec(
            self.data[n * stride..(n + 1) * stride].to_vec(),
            &[1, c, h, w],
        )
    }

    /// Concatenates NCHW tensors along the channel axis. All inputs must
    /// share N, H and W.
    pub fn cat_channels(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "cat_channels needs at least one tensor");
        let (n, _, h, w) = parts[0].shape.nchw();
        let c_total: usize = parts
            .iter()
            .map(|p| {
                let (pn, pc, ph, pw) = p.shape.nchw();
                assert_eq!(
                    (pn, ph, pw),
                    (n, h, w),
                    "cat_channels non-channel dims must match"
                );
                pc
            })
            .sum();
        let mut out = Tensor::zeros(&[n, c_total, h, w]);
        for ni in 0..n {
            let mut c_off = 0usize;
            for p in parts {
                let pc = p.dims()[1];
                for c in 0..pc {
                    for hh in 0..h {
                        let src = p.shape.offset4(ni, c, hh, 0);
                        let dst = out.shape.offset4(ni, c_off + c, hh, 0);
                        out.data[dst..dst + w].copy_from_slice(&p.data[src..src + w]);
                    }
                }
                c_off += pc;
            }
        }
        out
    }
}

/// Draws one standard-normal sample via Box–Muller (avoids a dependency on
/// `rand_distr`).
pub fn sample_standard_normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        *t.at4_mut(1, 2, 3, 4) = 7.0;
        assert_eq!(t.at4(1, 2, 3, 4), 7.0);
        assert_eq!(t.numel(), 120);
        assert_eq!(t.sum(), 7.0);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(&[32], 0.0, 1.0, 7);
        let b = Tensor::randn(&[32], 0.0, 1.0, 7);
        let c = Tensor::randn(&[32], 0.0, 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_moments_roughly_correct() {
        let t = Tensor::randn(&[100_000], 2.0, 3.0, 1);
        assert!((t.mean() - 2.0).abs() < 0.05, "mean {}", t.mean());
        let var = t.map(|v| (v - t.mean()).powi(2)).mean();
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "zip shape mismatch")]
    fn zip_rejects_mismatched_shapes() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
    }

    #[test]
    fn slice_batch_extracts_contiguous_item() {
        let t = Tensor::from_vec(
            (0..2 * 2 * 2 * 2).map(|v| v as f32).collect(),
            &[2, 2, 2, 2],
        );
        let b1 = t.slice_batch(1);
        assert_eq!(b1.dims(), &[1, 2, 2, 2]);
        assert_eq!(b1.data()[0], 8.0);
    }

    #[test]
    fn cat_channels_stacks() {
        let a = Tensor::full(&[1, 1, 2, 2], 1.0);
        let b = Tensor::full(&[1, 2, 2, 2], 2.0);
        let c = Tensor::cat_channels(&[&a, &b]);
        assert_eq!(c.dims(), &[1, 3, 2, 2]);
        assert_eq!(c.at4(0, 0, 0, 0), 1.0);
        assert_eq!(c.at4(0, 1, 1, 1), 2.0);
        assert_eq!(c.at4(0, 2, 0, 1), 2.0);
    }
}
