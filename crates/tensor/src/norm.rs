//! Batch normalization (2-D, per channel) with full training-mode gradients.

use crate::Tensor;

/// Saved forward statistics needed by [`batch_norm2d_backward`].
#[derive(Clone, Debug)]
pub struct BnCache {
    /// Per-channel batch mean.
    pub mean: Vec<f32>,
    /// Per-channel inverse standard deviation `1/sqrt(var + eps)`.
    pub inv_std: Vec<f32>,
    /// Normalized activations `x_hat` (same shape as the input).
    pub x_hat: Tensor,
}

/// Training-mode batch norm over `[N, C, H, W]`:
/// `y = gamma * (x - mean_c) / sqrt(var_c + eps) + beta`.
///
/// Returns the output and the cache for backward. `running_mean/var` are
/// updated in place with `momentum` (PyTorch convention:
/// `running = (1 - momentum) * running + momentum * batch`).
#[allow(clippy::too_many_arguments)]
pub fn batch_norm2d_train(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    running_mean: &mut [f32],
    running_var: &mut [f32],
    momentum: f32,
    eps: f32,
) -> (Tensor, BnCache) {
    let (n, c, h, w) = x.shape().nchw();
    assert_eq!(gamma.numel(), c);
    assert_eq!(beta.numel(), c);
    let m = (n * h * w) as f32;

    let mut mean = vec![0.0f32; c];
    let mut var = vec![0.0f32; c];
    for ni in 0..n {
        for ci in 0..c {
            let base = x.shape().offset4(ni, ci, 0, 0);
            mean[ci] += x.data()[base..base + h * w].iter().sum::<f32>();
        }
    }
    for mu in &mut mean {
        *mu /= m;
    }
    for ni in 0..n {
        for ci in 0..c {
            let base = x.shape().offset4(ni, ci, 0, 0);
            var[ci] += x.data()[base..base + h * w]
                .iter()
                .map(|v| (v - mean[ci]).powi(2))
                .sum::<f32>();
        }
    }
    for v in &mut var {
        *v /= m;
    }

    for ci in 0..c {
        running_mean[ci] = (1.0 - momentum) * running_mean[ci] + momentum * mean[ci];
        running_var[ci] = (1.0 - momentum) * running_var[ci] + momentum * var[ci];
    }

    let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + eps).sqrt()).collect();
    let mut x_hat = Tensor::zeros(x.dims());
    let mut y = Tensor::zeros(x.dims());
    for ni in 0..n {
        for ci in 0..c {
            let base = x.shape().offset4(ni, ci, 0, 0);
            let (g, b, mu, is) = (gamma.data()[ci], beta.data()[ci], mean[ci], inv_std[ci]);
            for i in base..base + h * w {
                let xh = (x.data()[i] - mu) * is;
                x_hat.data_mut()[i] = xh;
                y.data_mut()[i] = g * xh + b;
            }
        }
    }
    (
        y,
        BnCache {
            mean,
            inv_std,
            x_hat,
        },
    )
}

/// Inference-mode batch norm using running statistics.
pub fn batch_norm2d_infer(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    running_mean: &[f32],
    running_var: &[f32],
    eps: f32,
) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    let mut y = Tensor::zeros(x.dims());
    for ni in 0..n {
        for ci in 0..c {
            let base = x.shape().offset4(ni, ci, 0, 0);
            let is = 1.0 / (running_var[ci] + eps).sqrt();
            let (g, b, mu) = (gamma.data()[ci], beta.data()[ci], running_mean[ci]);
            for i in base..base + h * w {
                y.data_mut()[i] = g * (x.data()[i] - mu) * is + b;
            }
        }
    }
    y
}

/// Gradients of training-mode batch norm: `(grad_x, grad_gamma, grad_beta)`.
///
/// Uses the standard closed form:
/// `dx = (gamma * inv_std / m) * (m*dy - sum(dy) - x_hat * sum(dy * x_hat))`.
pub fn batch_norm2d_backward(
    gy: &Tensor,
    gamma: &Tensor,
    cache: &BnCache,
) -> (Tensor, Tensor, Tensor) {
    let (n, c, h, w) = gy.shape().nchw();
    let m = (n * h * w) as f32;
    let mut sum_dy = vec![0.0f32; c];
    let mut sum_dy_xhat = vec![0.0f32; c];
    for ni in 0..n {
        for ci in 0..c {
            let base = gy.shape().offset4(ni, ci, 0, 0);
            for i in base..base + h * w {
                sum_dy[ci] += gy.data()[i];
                sum_dy_xhat[ci] += gy.data()[i] * cache.x_hat.data()[i];
            }
        }
    }
    let mut gx = Tensor::zeros(gy.dims());
    for ni in 0..n {
        for ci in 0..c {
            let base = gy.shape().offset4(ni, ci, 0, 0);
            let coeff = gamma.data()[ci] * cache.inv_std[ci] / m;
            for i in base..base + h * w {
                gx.data_mut()[i] = coeff
                    * (m * gy.data()[i] - sum_dy[ci] - cache.x_hat.data()[i] * sum_dy_xhat[ci]);
            }
        }
    }
    let g_gamma = Tensor::from_vec(sum_dy_xhat, &[c]);
    let g_beta = Tensor::from_vec(sum_dy, &[c]);
    (gx, g_gamma, g_beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_normalizes_to_zero_mean_unit_var() {
        let x = Tensor::randn(&[4, 3, 5, 5], 3.0, 2.0, 21);
        let gamma = Tensor::ones(&[3]);
        let beta = Tensor::zeros(&[3]);
        let mut rm = vec![0.0; 3];
        let mut rv = vec![1.0; 3];
        let (y, _) = batch_norm2d_train(&x, &gamma, &beta, &mut rm, &mut rv, 0.1, 1e-5);
        // Per-channel mean ~0, var ~1.
        let (n, c, h, w) = y.shape().nchw();
        for ci in 0..c {
            let mut s = 0.0;
            let mut s2 = 0.0;
            for ni in 0..n {
                for yy in 0..h {
                    for xx in 0..w {
                        let v = y.at4(ni, ci, yy, xx);
                        s += v;
                        s2 += v * v;
                    }
                }
            }
            let m = (n * h * w) as f32;
            assert!((s / m).abs() < 1e-4);
            assert!((s2 / m - 1.0).abs() < 1e-3);
        }
        // Running stats moved toward batch stats.
        assert!((rm[0] - 0.1 * 3.0).abs() < 0.3);
    }

    #[test]
    fn infer_uses_running_stats() {
        let x = Tensor::full(&[1, 1, 2, 2], 10.0);
        let gamma = Tensor::full(&[1], 2.0);
        let beta = Tensor::full(&[1], 1.0);
        let y = batch_norm2d_infer(&x, &gamma, &beta, &[10.0], &[4.0], 0.0);
        // (10-10)/2 * 2 + 1 = 1
        assert!(y.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn backward_matches_finite_difference() {
        let x = Tensor::randn(&[2, 2, 3, 3], 0.0, 1.0, 22);
        let gamma = Tensor::from_vec(vec![1.5, 0.7], &[2]);
        let beta = Tensor::from_vec(vec![0.1, -0.2], &[2]);
        let loss = |x: &Tensor| {
            let mut rm = vec![0.0; 2];
            let mut rv = vec![1.0; 2];
            let (y, _) = batch_norm2d_train(x, &gamma, &beta, &mut rm, &mut rv, 0.1, 1e-5);
            // Weighted sum so gradient is non-trivial.
            y.data()
                .iter()
                .enumerate()
                .map(|(i, v)| v * ((i % 5) as f32 - 2.0))
                .sum::<f32>()
        };
        let mut rm = vec![0.0; 2];
        let mut rv = vec![1.0; 2];
        let (y, cache) = batch_norm2d_train(&x, &gamma, &beta, &mut rm, &mut rv, 0.1, 1e-5);
        let gy = Tensor::from_vec(
            (0..y.numel()).map(|i| (i % 5) as f32 - 2.0).collect(),
            y.dims(),
        );
        let (gx, g_gamma, g_beta) = batch_norm2d_backward(&gy, &gamma, &cache);
        assert_eq!(g_gamma.numel(), 2);
        assert_eq!(g_beta.numel(), 2);

        let eps = 1e-2;
        for &idx in &[0usize, 9, 17, 35] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 3e-2,
                "gx[{idx}]: fd {fd} vs analytic {}",
                gx.data()[idx]
            );
        }
    }
}
