//! Mipmapped arrays — the *other* layered texture type (paper §III-B).
//!
//! CUDA offers two layered texture storages: layered textures and
//! mipmapped arrays. A mipmap is a pre-computed pyramid of progressively
//! half-resolution images, filtered trilinearly between adjacent levels.
//! The paper examines and **rejects** mipmaps for deformable convolution:
//! "due to the pyramidal structure of mipmaps, each layer must be loaded
//! and computed using the previous layer. Since this functionality is
//! inconsistent with our desired behavior, we use a layered texture."
//!
//! This module implements the mipmapped array anyway — pyramid
//! construction, LOD selection and trilinear filtering — both for
//! completeness of the texture-unit model and to *demonstrate* the paper's
//! argument in a test: sampling a feature map through any LOD > 0 is a
//! low-pass operation that destroys the exact-pixel semantics deformable
//! convolution needs (level 0 of a mipmap is just a layered texture with
//! extra memory).

use crate::texture::{AddressMode, FilterMode, LayeredTexture2d, TextureLimitError};

/// A mipmapped 2-D array: a pyramid of [`LayeredTexture2d`]s, level 0 at
/// full resolution, each subsequent level half the extent (floor, min 1),
/// built with a 2×2 box filter as GPU runtimes do.
pub struct MipmappedArray2d {
    levels: Vec<LayeredTexture2d>,
    /// Per-level coordinate scale reciprocals: `inv_scale[l] = 2^-l`.
    /// Powers of two are exact in fp32, so `coord · inv_scale[l]` is
    /// bit-identical to the legacy `coord / 2^l` division on every input —
    /// the trilinear walk pays one multiply instead of a shift + int→float
    /// convert + divide per level sample.
    inv_scale: Vec<f32>,
}

impl MipmappedArray2d {
    /// Builds the full pyramid from row-major layer data.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        data: Vec<f32>,
        layers: usize,
        height: usize,
        width: usize,
        base_addr: u64,
        max_layers: usize,
        max_dim: usize,
    ) -> Result<Self, TextureLimitError> {
        let mut levels = Vec::new();
        let mut cur = data;
        let (mut h, mut w) = (height, width);
        let mut addr = base_addr;
        loop {
            let tex = LayeredTexture2d::new(cur.clone(), layers, h, w, addr, max_layers, max_dim)?;
            addr += tex.size_bytes() as u64;
            levels.push(tex);
            if h == 1 && w == 1 {
                break;
            }
            // 2x2 box-filter downsample (clamping at odd edges).
            let (nh, nw) = ((h / 2).max(1), (w / 2).max(1));
            let mut next = vec![0.0f32; layers * nh * nw];
            for l in 0..layers {
                for y in 0..nh {
                    for x in 0..nw {
                        let mut acc = 0.0f32;
                        let mut cnt = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let (sy, sx) = (2 * y + dy, 2 * x + dx);
                                if sy < h && sx < w {
                                    acc += cur[(l * h + sy) * w + sx];
                                    cnt += 1;
                                }
                            }
                        }
                        next[(l * nh + y) * nw + x] = acc / cnt as f32;
                    }
                }
            }
            cur = next;
            h = nh;
            w = nw;
        }
        let inv_scale = (0..levels.len())
            .map(|l| 1.0 / (1u32 << l) as f32)
            .collect();
        Ok(MipmappedArray2d { levels, inv_scale })
    }

    /// Number of pyramid levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Immutable access to one level.
    pub fn level(&self, lod: usize) -> &LayeredTexture2d {
        &self.levels[lod]
    }

    /// Total memory footprint — strictly larger than a plain layered
    /// texture of the same base image (the pyramid costs ≈ 1/3 extra).
    pub fn size_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.size_bytes()).sum()
    }

    /// Sets addressing/filtering on every level.
    pub fn configure(&mut self, address: AddressMode, filter: FilterMode) {
        for l in &mut self.levels {
            l.address_mode = address;
            l.filter_mode = filter;
        }
    }

    /// Trilinear fetch: bilinear samples at `floor(lod)` and `ceil(lod)`,
    /// linearly blended by the LOD fraction. Coordinates are given in
    /// level-0 texel space and scaled per level.
    ///
    /// Rewritten hot path: level scales come from the precomputed exact
    /// reciprocal table, and the integer-LOD / top-of-pyramid cases fold
    /// into a single `blends` predicate, so a degenerate trilinear fetch is
    /// exactly one bilinear fetch behind one branch (no closure, no
    /// per-sample shift/divide). Bit-identical to
    /// [`MipmappedArray2d::fetch_trilinear_legacy`].
    pub fn fetch_trilinear(&self, layer: usize, y: f32, x: f32, lod: f32) -> f32 {
        let top = self.levels.len() - 1;
        let lod = lod.clamp(0.0, top as f32);
        let l0 = lod.floor() as usize;
        let l1 = (l0 + 1).min(top);
        let frac = lod - l0 as f32;
        let v0 = self.levels[l0]
            .fetch(layer, y * self.inv_scale[l0], x * self.inv_scale[l0])
            .value;
        let blends = frac != 0.0 && l0 != l1;
        if !blends {
            return v0;
        }
        let v1 = self.levels[l1]
            .fetch(layer, y * self.inv_scale[l1], x * self.inv_scale[l1])
            .value;
        (1.0 - frac) * v0 + frac * v1
    }

    /// Verbatim pre-rewrite trilinear path (per-sample scale
    /// reconstruction, closure-based branch tree). Oracle for the boundary
    /// property tests — [`MipmappedArray2d::fetch_trilinear`] must match it
    /// bit for bit.
    pub fn fetch_trilinear_legacy(&self, layer: usize, y: f32, x: f32, lod: f32) -> f32 {
        let lod = lod.clamp(0.0, (self.levels.len() - 1) as f32);
        let l0 = lod.floor() as usize;
        let l1 = (l0 + 1).min(self.levels.len() - 1);
        let frac = lod - l0 as f32;
        let sample = |lvl: usize| {
            let scale = (1u32 << lvl) as f32;
            self.levels[lvl]
                .fetch_legacy(layer, y / scale, x / scale)
                .value
        };
        let v0 = sample(l0);
        if frac == 0.0 || l0 == l1 {
            v0
        } else {
            (1.0 - frac) * v0 + frac * sample(l1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image(h: usize, w: usize) -> Vec<f32> {
        (0..h * w).map(|i| (i % w) as f32).collect()
    }

    #[test]
    fn pyramid_has_log2_levels() {
        let m = MipmappedArray2d::new(gradient_image(64, 64), 1, 64, 64, 0, 2048, 32768).unwrap();
        assert_eq!(m.num_levels(), 7); // 64,32,16,8,4,2,1
        assert_eq!(m.level(6).height(), 1);
    }

    #[test]
    fn level0_is_exact_and_higher_levels_are_filtered() {
        let m = MipmappedArray2d::new(gradient_image(8, 8), 1, 8, 8, 0, 2048, 32768).unwrap();
        // LOD 0 at texel centers = raw data (layered-texture semantics).
        assert_eq!(m.fetch_trilinear(0, 2.0, 3.0, 0.0), 3.0);
        // LOD 1 is a 2x2 box filter: texel (1,1) of level 1 = mean of
        // columns 2,3 = 2.5.
        assert!((m.level(1).texel(0, 1, 1) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn pyramid_costs_about_a_third_extra() {
        let m = MipmappedArray2d::new(vec![0.0; 64 * 64], 1, 64, 64, 0, 2048, 32768).unwrap();
        let base = m.level(0).size_bytes() as f64;
        let total = m.size_bytes() as f64;
        assert!(
            total / base > 1.25 && total / base < 1.6,
            "pyramid overhead {}",
            total / base
        );
    }

    #[test]
    fn trilinear_blends_between_levels() {
        // Constant-per-level check: build an image whose level-1 mean
        // differs from level-0 values at a probe point.
        let mut img = vec![0.0f32; 16];
        img[0] = 4.0; // level1 texel(0,0) = 1.0, level0 texel(0,0) = 4.0
        let m = MipmappedArray2d::new(img, 1, 4, 4, 0, 2048, 32768).unwrap();
        let v0 = m.fetch_trilinear(0, 0.0, 0.0, 0.0);
        let v1 = m.fetch_trilinear(0, 0.0, 0.0, 1.0);
        let vh = m.fetch_trilinear(0, 0.0, 0.0, 0.5);
        assert_eq!(v0, 4.0);
        assert!((v1 - 1.0).abs() < 1e-6);
        assert!((vh - 2.5).abs() < 1e-6, "halfway blend {vh}");
    }

    /// A reproducible random pyramid input for the property tests: the
    /// generated case is plain data (`Debug`-printable on failure); the
    /// property rebuilds the pyramid from it.
    #[derive(Debug)]
    struct MipCase {
        data: Vec<f32>,
        h: usize,
        w: usize,
        y: f32,
        x: f32,
    }

    impl MipCase {
        fn generate(rng: &mut defcon_support::rng::StdRng) -> MipCase {
            use defcon_support::rng::Rng;
            let h = rng.gen_range(2usize..24);
            let w = rng.gen_range(2usize..24);
            MipCase {
                data: (0..h * w).map(|_| rng.gen_range(-8.0f32..8.0)).collect(),
                h,
                w,
                y: rng.gen_range(0.0f32..(h - 1) as f32),
                x: rng.gen_range(0.0f32..(w - 1) as f32),
            }
        }

        fn build(&self) -> MipmappedArray2d {
            MipmappedArray2d::new(self.data.clone(), 1, self.h, self.w, 0, 2048, 32768).unwrap()
        }
    }

    #[test]
    fn prop_lod_clamps_at_extremes() {
        use defcon_support::prop::{self, Config};
        use defcon_support::rng::Rng;

        prop::check(
            "lod clamps below 0 and above the last level",
            &Config::cases(32),
            |rng| {
                let case = MipCase::generate(rng);
                let below = -rng.gen_range(0.1f32..100.0);
                let above_extra = rng.gen_range(0.0f32..100.0);
                (case, below, above_extra)
            },
            |(case, below, above_extra)| {
                let m = case.build();
                let top = (m.num_levels() - 1) as f32;
                let above = m.num_levels() as f32 + above_extra;
                defcon_support::prop_assert_eq!(
                    m.fetch_trilinear(0, case.y, case.x, *below),
                    m.fetch_trilinear(0, case.y, case.x, 0.0)
                );
                defcon_support::prop_assert_eq!(
                    m.fetch_trilinear(0, case.y, case.x, above),
                    m.fetch_trilinear(0, case.y, case.x, top)
                );
                Ok(())
            },
        );
    }

    #[test]
    fn prop_trilinear_is_monotone_between_adjacent_levels() {
        use defcon_support::prop::{self, Config};
        use defcon_support::rng::Rng;

        // Within one integer LOD cell the fetch is a linear blend of the two
        // adjacent level samples: it is bounded by them and moves
        // monotonically toward the upper level as the fraction grows.
        prop::check(
            "trilinear fetch is a monotone blend in lod",
            &Config::cases(32),
            |rng| {
                let case = MipCase::generate(rng);
                let cell_pick = rng.gen_range(0u32..64);
                let fa = rng.gen_range(0.0f32..1.0);
                let fb = rng.gen_range(0.0f32..1.0);
                (case, cell_pick, fa.min(fb), fa.max(fb))
            },
            |(case, cell_pick, fa, fb)| {
                let m = case.build();
                let cell = (*cell_pick as usize % m.num_levels()) as f32;
                let top = (m.num_levels() - 1) as f32;
                let v0 = m.fetch_trilinear(0, case.y, case.x, cell);
                let v1 = m.fetch_trilinear(0, case.y, case.x, (cell + 1.0).min(top));
                let va = m.fetch_trilinear(0, case.y, case.x, cell + *fa);
                let vb = m.fetch_trilinear(0, case.y, case.x, cell + *fb);
                let (lo, hi) = (v0.min(v1), v0.max(v1));
                let eps = 1e-4 * (1.0 + hi.abs());
                defcon_support::prop_assert!(
                    va >= lo - eps && va <= hi + eps,
                    "blend {va} escapes [{lo}, {hi}] at lod {}",
                    cell + fa
                );
                // fa <= fb: the blend moves from v0 toward v1, never back.
                if v0 <= v1 {
                    defcon_support::prop_assert!(vb >= va - eps, "not monotone up: {va} -> {vb}");
                } else {
                    defcon_support::prop_assert!(vb <= va + eps, "not monotone down: {va} -> {vb}");
                }
                Ok(())
            },
        );
    }

    #[test]
    fn prop_integer_lod_equals_that_levels_bilinear_fetch() {
        use defcon_support::prop::{self, Config};
        use defcon_support::rng::Rng;

        prop::check(
            "integer lod selects exactly one level",
            &Config::cases(32),
            |rng| {
                let case = MipCase::generate(rng);
                let lvl_pick = rng.gen_range(0u32..64);
                (case, lvl_pick)
            },
            |(case, lvl_pick)| {
                let m = case.build();
                let lvl = *lvl_pick as usize % m.num_levels();
                let scale = (1u32 << lvl) as f32;
                let direct = m.level(lvl).fetch(0, case.y / scale, case.x / scale).value;
                defcon_support::prop_assert_eq!(
                    m.fetch_trilinear(0, case.y, case.x, lvl as f32),
                    direct
                );
                Ok(())
            },
        );
    }

    /// The paper's §III-B argument, as a test: deformable convolution needs
    /// exact per-pixel values; any LOD > 0 low-passes the feature map and
    /// changes the sampled values, so a mipmap buys nothing over its level
    /// 0 (a plain layered texture) while costing extra memory and
    /// level-by-level construction.
    #[test]
    fn mipmaps_are_unsuitable_for_deformable_sampling() {
        let data: Vec<f32> = (0..256).map(|i| ((i * 37) % 19) as f32).collect();
        let m = MipmappedArray2d::new(data.clone(), 1, 16, 16, 0, 2048, 32768).unwrap();
        let flat = LayeredTexture2d::new(data, 1, 16, 16, 1 << 20, 2048, 32768).unwrap();
        let mut max_err_l0 = 0.0f32;
        let mut max_err_l1 = 0.0f32;
        for i in 0..50 {
            let y = (i as f32 * 0.29) % 14.0;
            let x = (i as f32 * 0.53) % 14.0;
            let exact = flat.fetch(0, y, x).value;
            max_err_l0 = max_err_l0.max((m.fetch_trilinear(0, y, x, 0.0) - exact).abs());
            max_err_l1 = max_err_l1.max((m.fetch_trilinear(0, y, x, 1.0) - exact).abs());
        }
        assert!(max_err_l0 < 1e-6, "level 0 must equal the layered texture");
        assert!(
            max_err_l1 > 0.5,
            "LOD 1 should visibly low-pass the features (err {max_err_l1})"
        );
    }
}
