//! Device configurations: the knobs that distinguish a Jetson AGX Xavier
//! from an RTX 2080 Ti in this model.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Latency of a hit, in core cycles.
    pub hit_latency: u32,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry (set indexing is modular, so
    /// non-power-of-two set counts are fine).
    pub fn num_sets(&self) -> usize {
        let sets = self.size_bytes / (self.line_bytes * self.ways);
        assert!(sets > 0, "cache too small for its line size and associativity");
        sets
    }
}

/// A GPU model: enough microarchitectural detail to time the kernels in
/// this reproduction, no more.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable name (appears in reports).
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Threads per warp (32 on every NVIDIA part).
    pub warp_size: usize,
    /// Maximum resident warps per SM (occupancy ceiling).
    pub max_warps_per_sm: usize,
    /// Core clock in GHz.
    pub core_clock_ghz: f64,
    /// FP32 FMA lanes per SM (FMAs retired per cycle per SM).
    pub fp32_lanes_per_sm: usize,
    /// Integer/address ALU lanes per SM.
    pub alu_lanes_per_sm: usize,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// DRAM access latency in core cycles.
    pub dram_latency: u32,
    /// L2 slice shared by all SMs.
    pub l2: CacheGeometry,
    /// Per-SM L1/unified cache.
    pub l1: CacheGeometry,
    /// Per-SM texture cache (read-only path).
    pub tex_cache: CacheGeometry,
    /// Bilinear texture fetches retired per cycle per SM at **fp32** filter
    /// precision. (Most NVIDIA parts filter fp32 textures at half rate.)
    pub tex_filter_rate_fp32: f64,
    /// Bilinear fetches per cycle per SM at reduced (fp16) filter precision
    /// — the `tex2D++` path.
    pub tex_filter_rate_fp16: f64,
    /// Latency of a texture fetch that hits the texture cache, in cycles.
    pub tex_hit_latency: u32,
    /// Fraction of non-critical pipe work hidden under the busiest pipe.
    /// 1.0 = perfect overlap (pure roofline); 0.0 = fully serialized pipes.
    /// Real SMs sit in between because dependent instructions (a texture
    /// fetch feeding an FMA) limit how independently the pipes can run.
    pub overlap_efficiency: f64,
    /// Fixed kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Maximum layers in a 2-D layered texture (2048 on Xavier, §III-B).
    pub max_texture_layers: usize,
    /// Maximum texture extent per dimension (32768 on Xavier, §III-B).
    pub max_texture_dim: usize,
}

impl DeviceConfig {
    /// NVIDIA Jetson AGX Xavier: 8 Volta SMs @ 1.377 GHz, 512 FP32 cores,
    /// ~137 GB/s LPDDR4x, 512 KB L2 (iGPU), 128 KB unified L1/shared per SM.
    pub fn xavier_agx() -> Self {
        DeviceConfig {
            name: "Jetson-AGX-Xavier".into(),
            num_sms: 8,
            warp_size: 32,
            max_warps_per_sm: 64,
            core_clock_ghz: 1.377,
            fp32_lanes_per_sm: 64,
            alu_lanes_per_sm: 64,
            dram_bandwidth_gbps: 137.0,
            dram_latency: 650, // LPDDR4x on a shared SoC fabric is slow
            l2: CacheGeometry { size_bytes: 512 * 1024, line_bytes: 128, ways: 16, hit_latency: 220 },
            l1: CacheGeometry { size_bytes: 64 * 1024, line_bytes: 128, ways: 4, hit_latency: 32 },
            tex_cache: CacheGeometry { size_bytes: 48 * 1024, line_bytes: 128, ways: 4, hit_latency: 96 },
            tex_filter_rate_fp32: 1.0,
            tex_filter_rate_fp16: 2.0,
            tex_hit_latency: 96,
            overlap_efficiency: 0.7,
            launch_overhead_us: 8.0,
            max_texture_layers: 2048,
            max_texture_dim: 32768,
        }
    }

    /// NVIDIA RTX 2080 Ti: 68 Turing SMs @ 1.545 GHz, 616 GB/s GDDR6,
    /// 5.5 MB L2.
    pub fn rtx2080ti() -> Self {
        DeviceConfig {
            name: "RTX-2080Ti".into(),
            num_sms: 68,
            warp_size: 32,
            max_warps_per_sm: 32,
            core_clock_ghz: 1.545,
            fp32_lanes_per_sm: 64,
            alu_lanes_per_sm: 64,
            dram_bandwidth_gbps: 616.0,
            dram_latency: 450,
            l2: CacheGeometry { size_bytes: 4 * 1024 * 1024, line_bytes: 128, ways: 16, hit_latency: 190 },
            l1: CacheGeometry { size_bytes: 64 * 1024, line_bytes: 128, ways: 4, hit_latency: 28 },
            tex_cache: CacheGeometry { size_bytes: 64 * 1024, line_bytes: 128, ways: 4, hit_latency: 80 },
            tex_filter_rate_fp32: 4.0,
            tex_filter_rate_fp16: 8.0,
            tex_hit_latency: 80,
            overlap_efficiency: 0.75,
            launch_overhead_us: 4.0,
            max_texture_layers: 2048,
            max_texture_dim: 32768,
        }
    }

    /// Peak FP32 throughput in GFLOP/s (2 flops per FMA).
    pub fn peak_gflops(&self) -> f64 {
        2.0 * self.num_sms as f64 * self.fp32_lanes_per_sm as f64 * self.core_clock_ghz
    }

    /// DRAM bytes deliverable per core cycle (whole chip).
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gbps / self.core_clock_ghz
    }

    /// Converts core cycles to milliseconds.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.core_clock_ghz * 1e9) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_peak_flops_matches_spec() {
        // 512 CUDA cores * 2 * 1.377 GHz ≈ 1.41 TFLOP/s
        let x = DeviceConfig::xavier_agx();
        assert!((x.peak_gflops() - 1410.0).abs() < 10.0, "{}", x.peak_gflops());
    }

    #[test]
    fn turing_is_an_order_of_magnitude_bigger() {
        let x = DeviceConfig::xavier_agx();
        let t = DeviceConfig::rtx2080ti();
        assert!(t.peak_gflops() / x.peak_gflops() > 8.0);
        assert!(t.dram_bandwidth_gbps / x.dram_bandwidth_gbps > 4.0);
    }

    #[test]
    fn cache_geometry_sets() {
        let g = CacheGeometry { size_bytes: 64 * 1024, line_bytes: 128, ways: 4, hit_latency: 1 };
        assert_eq!(g.num_sets(), 128);
    }

    #[test]
    fn cycles_to_ms_round_trip() {
        let x = DeviceConfig::xavier_agx();
        let ms = x.cycles_to_ms(1.377e9);
        assert!((ms - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn texture_limits_match_paper() {
        let x = DeviceConfig::xavier_agx();
        assert_eq!(x.max_texture_layers, 2048);
        assert_eq!(x.max_texture_dim, 32768);
    }
}
