//! Device configurations: the knobs that distinguish a Jetson AGX Xavier
//! from an RTX 2080 Ti in this model.

use defcon_support::error::DefconError;
use defcon_support::fault;
use defcon_support::json::{FromJson, Json, JsonError, ToJson};

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Latency of a hit, in core cycles.
    pub hit_latency: u32,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry (set indexing is modular, so
    /// non-power-of-two set counts are fine).
    pub fn num_sets(&self) -> usize {
        let sets = self.size_bytes / (self.line_bytes * self.ways);
        assert!(
            sets > 0,
            "cache too small for its line size and associativity"
        );
        sets
    }

    /// Checks the geometry is realizable (`what` names the cache level in
    /// the error). The same condition `num_sets` asserts, but as a typed
    /// error a config loader can report instead of aborting.
    pub fn validate(&self, what: &str) -> Result<(), DefconError> {
        let constraint = |detail: String| DefconError::Constraint {
            what: "cache-config".to_string(),
            detail: format!("{what}: {detail}"),
        };
        if self.line_bytes == 0 || self.ways == 0 || self.size_bytes == 0 {
            return Err(constraint(format!(
                "size/line/ways must all be positive (got {}/{}/{})",
                self.size_bytes, self.line_bytes, self.ways
            )));
        }
        if self.size_bytes / (self.line_bytes * self.ways) == 0 {
            return Err(constraint(format!(
                "{} B is too small for {} B lines × {} ways (zero sets)",
                self.size_bytes, self.line_bytes, self.ways
            )));
        }
        Ok(())
    }
}

impl ToJson for CacheGeometry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("size_bytes", Json::from(self.size_bytes)),
            ("line_bytes", Json::from(self.line_bytes)),
            ("ways", Json::from(self.ways)),
            ("hit_latency", Json::from(self.hit_latency as u64)),
        ])
    }
}

impl FromJson for CacheGeometry {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(CacheGeometry {
            size_bytes: j.usize_field("size_bytes")?,
            line_bytes: j.usize_field("line_bytes")?,
            ways: j.usize_field("ways")?,
            hit_latency: j.u64_field("hit_latency")? as u32,
        })
    }
}

/// A GPU model: enough microarchitectural detail to time the kernels in
/// this reproduction, no more.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Human-readable name (appears in reports).
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Threads per warp (32 on every NVIDIA part).
    pub warp_size: usize,
    /// Maximum resident warps per SM (occupancy ceiling).
    pub max_warps_per_sm: usize,
    /// Core clock in GHz.
    pub core_clock_ghz: f64,
    /// FP32 FMA lanes per SM (FMAs retired per cycle per SM).
    pub fp32_lanes_per_sm: usize,
    /// Integer/address ALU lanes per SM.
    pub alu_lanes_per_sm: usize,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// DRAM access latency in core cycles.
    pub dram_latency: u32,
    /// L2 slice shared by all SMs. In a parallel launch each engine worker
    /// instantiates its own shard of this geometry (see the `engine` module
    /// docs for the determinism contract that implies).
    pub l2: CacheGeometry,
    /// Per-SM L1/unified cache.
    pub l1: CacheGeometry,
    /// Per-SM texture cache (read-only path).
    pub tex_cache: CacheGeometry,
    /// Bilinear texture fetches retired per cycle per SM at **fp32** filter
    /// precision. (Most NVIDIA parts filter fp32 textures at half rate.)
    pub tex_filter_rate_fp32: f64,
    /// Bilinear fetches per cycle per SM at reduced (fp16) filter precision
    /// — the `tex2D++` path.
    pub tex_filter_rate_fp16: f64,
    /// Latency of a texture fetch that hits the texture cache, in cycles.
    pub tex_hit_latency: u32,
    /// Fraction of non-critical pipe work hidden under the busiest pipe.
    /// 1.0 = perfect overlap (pure roofline); 0.0 = fully serialized pipes.
    /// Real SMs sit in between because dependent instructions (a texture
    /// fetch feeding an FMA) limit how independently the pipes can run.
    pub overlap_efficiency: f64,
    /// Fixed kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Maximum layers in a 2-D layered texture (2048 on Xavier, §III-B).
    pub max_texture_layers: usize,
    /// Maximum texture extent per dimension (32768 on Xavier, §III-B).
    pub max_texture_dim: usize,
}

impl ToJson for DeviceConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("num_sms", Json::from(self.num_sms)),
            ("warp_size", Json::from(self.warp_size)),
            ("max_warps_per_sm", Json::from(self.max_warps_per_sm)),
            ("core_clock_ghz", Json::from(self.core_clock_ghz)),
            ("fp32_lanes_per_sm", Json::from(self.fp32_lanes_per_sm)),
            ("alu_lanes_per_sm", Json::from(self.alu_lanes_per_sm)),
            ("dram_bandwidth_gbps", Json::from(self.dram_bandwidth_gbps)),
            ("dram_latency", Json::from(self.dram_latency as u64)),
            ("l2", self.l2.to_json()),
            ("l1", self.l1.to_json()),
            ("tex_cache", self.tex_cache.to_json()),
            (
                "tex_filter_rate_fp32",
                Json::from(self.tex_filter_rate_fp32),
            ),
            (
                "tex_filter_rate_fp16",
                Json::from(self.tex_filter_rate_fp16),
            ),
            ("tex_hit_latency", Json::from(self.tex_hit_latency as u64)),
            ("overlap_efficiency", Json::from(self.overlap_efficiency)),
            ("launch_overhead_us", Json::from(self.launch_overhead_us)),
            ("max_texture_layers", Json::from(self.max_texture_layers)),
            ("max_texture_dim", Json::from(self.max_texture_dim)),
        ])
    }
}

impl FromJson for DeviceConfig {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(DeviceConfig {
            name: j.str_field("name")?.to_string(),
            num_sms: j.usize_field("num_sms")?,
            warp_size: j.usize_field("warp_size")?,
            max_warps_per_sm: j.usize_field("max_warps_per_sm")?,
            core_clock_ghz: j.num_field("core_clock_ghz")?,
            fp32_lanes_per_sm: j.usize_field("fp32_lanes_per_sm")?,
            alu_lanes_per_sm: j.usize_field("alu_lanes_per_sm")?,
            dram_bandwidth_gbps: j.num_field("dram_bandwidth_gbps")?,
            dram_latency: j.u64_field("dram_latency")? as u32,
            l2: CacheGeometry::from_json(j.field("l2")?)?,
            l1: CacheGeometry::from_json(j.field("l1")?)?,
            tex_cache: CacheGeometry::from_json(j.field("tex_cache")?)?,
            tex_filter_rate_fp32: j.num_field("tex_filter_rate_fp32")?,
            tex_filter_rate_fp16: j.num_field("tex_filter_rate_fp16")?,
            tex_hit_latency: j.u64_field("tex_hit_latency")? as u32,
            overlap_efficiency: j.num_field("overlap_efficiency")?,
            launch_overhead_us: j.num_field("launch_overhead_us")?,
            max_texture_layers: j.usize_field("max_texture_layers")?,
            max_texture_dim: j.usize_field("max_texture_dim")?,
        })
    }
}

impl DeviceConfig {
    /// NVIDIA Jetson AGX Xavier: 8 Volta SMs @ 1.377 GHz, 512 FP32 cores,
    /// ~137 GB/s LPDDR4x, 512 KB L2 (iGPU), 128 KB unified L1/shared per SM.
    pub fn xavier_agx() -> Self {
        DeviceConfig {
            name: "Jetson-AGX-Xavier".into(),
            num_sms: 8,
            warp_size: 32,
            max_warps_per_sm: 64,
            core_clock_ghz: 1.377,
            fp32_lanes_per_sm: 64,
            alu_lanes_per_sm: 64,
            dram_bandwidth_gbps: 137.0,
            dram_latency: 650, // LPDDR4x on a shared SoC fabric is slow
            l2: CacheGeometry {
                size_bytes: 512 * 1024,
                line_bytes: 128,
                ways: 16,
                hit_latency: 220,
            },
            l1: CacheGeometry {
                size_bytes: 64 * 1024,
                line_bytes: 128,
                ways: 4,
                hit_latency: 32,
            },
            tex_cache: CacheGeometry {
                size_bytes: 48 * 1024,
                line_bytes: 128,
                ways: 4,
                hit_latency: 96,
            },
            tex_filter_rate_fp32: 1.0,
            tex_filter_rate_fp16: 2.0,
            tex_hit_latency: 96,
            overlap_efficiency: 0.7,
            launch_overhead_us: 8.0,
            max_texture_layers: 2048,
            max_texture_dim: 32768,
        }
    }

    /// NVIDIA RTX 2080 Ti: 68 Turing SMs @ 1.545 GHz, 616 GB/s GDDR6,
    /// 5.5 MB L2.
    pub fn rtx2080ti() -> Self {
        DeviceConfig {
            name: "RTX-2080Ti".into(),
            num_sms: 68,
            warp_size: 32,
            max_warps_per_sm: 32,
            core_clock_ghz: 1.545,
            fp32_lanes_per_sm: 64,
            alu_lanes_per_sm: 64,
            dram_bandwidth_gbps: 616.0,
            dram_latency: 450,
            l2: CacheGeometry {
                size_bytes: 4 * 1024 * 1024,
                line_bytes: 128,
                ways: 16,
                hit_latency: 190,
            },
            l1: CacheGeometry {
                size_bytes: 64 * 1024,
                line_bytes: 128,
                ways: 4,
                hit_latency: 28,
            },
            tex_cache: CacheGeometry {
                size_bytes: 64 * 1024,
                line_bytes: 128,
                ways: 4,
                hit_latency: 80,
            },
            tex_filter_rate_fp32: 4.0,
            tex_filter_rate_fp16: 8.0,
            tex_hit_latency: 80,
            overlap_efficiency: 0.75,
            launch_overhead_us: 4.0,
            max_texture_layers: 2048,
            max_texture_dim: 32768,
        }
    }

    /// Looks up a built-in preset by its canonical request name (the names
    /// `core::serve` uses to address devices in cache keys). Returns `None`
    /// for unknown names so callers can produce a typed error.
    pub fn preset(name: &str) -> Option<DeviceConfig> {
        match name {
            "xavier-agx" => Some(DeviceConfig::xavier_agx()),
            "rtx2080ti" => Some(DeviceConfig::rtx2080ti()),
            _ => None,
        }
    }

    /// The canonical names accepted by [`DeviceConfig::preset`].
    pub fn preset_names() -> [&'static str; 2] {
        ["xavier-agx", "rtx2080ti"]
    }

    /// Validates the whole configuration: positive counts and clocks, a
    /// sane overlap fraction, realizable cache geometries, positive texture
    /// limits. Launch paths call this before simulating so a hand-edited or
    /// JSON-loaded config fails with a typed [`DefconError::Constraint`]
    /// instead of a mid-simulation panic.
    ///
    /// Fault point `device.cache_config` injects a constraint violation
    /// here (modelling an invalid deployed config) for degradation tests.
    pub fn validate(&self) -> Result<(), DefconError> {
        if fault::fires("device.cache_config") {
            return Err(DefconError::Constraint {
                what: "cache-config".to_string(),
                detail: format!("injected fault: device.cache_config ({})", self.name),
            });
        }
        let constraint = |detail: String| DefconError::Constraint {
            what: "device-config".to_string(),
            detail: format!("{}: {detail}", self.name),
        };
        if self.num_sms == 0 || self.warp_size == 0 || self.max_warps_per_sm == 0 {
            return Err(constraint(format!(
                "SM/warp counts must be positive (sms={}, warp_size={}, max_warps={})",
                self.num_sms, self.warp_size, self.max_warps_per_sm
            )));
        }
        if self.fp32_lanes_per_sm == 0 || self.alu_lanes_per_sm == 0 {
            return Err(constraint("lane counts must be positive".to_string()));
        }
        for (name, v) in [
            ("core_clock_ghz", self.core_clock_ghz),
            ("dram_bandwidth_gbps", self.dram_bandwidth_gbps),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(constraint(format!(
                    "{name} must be positive and finite (got {v})"
                )));
            }
        }
        if !(self.overlap_efficiency.is_finite() && (0.0..=1.0).contains(&self.overlap_efficiency))
        {
            return Err(constraint(format!(
                "overlap_efficiency must be in [0, 1] (got {})",
                self.overlap_efficiency
            )));
        }
        self.l2.validate("l2")?;
        self.l1.validate("l1")?;
        self.tex_cache.validate("tex_cache")?;
        if self.max_texture_layers == 0 || self.max_texture_dim == 0 {
            return Err(constraint("texture limits must be positive".to_string()));
        }
        Ok(())
    }

    /// Peak FP32 throughput in GFLOP/s (2 flops per FMA).
    pub fn peak_gflops(&self) -> f64 {
        2.0 * self.num_sms as f64 * self.fp32_lanes_per_sm as f64 * self.core_clock_ghz
    }

    /// DRAM bytes deliverable per core cycle (whole chip).
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gbps / self.core_clock_ghz
    }

    /// Converts core cycles to milliseconds.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.core_clock_ghz * 1e9) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_peak_flops_matches_spec() {
        // 512 CUDA cores * 2 * 1.377 GHz ≈ 1.41 TFLOP/s
        let x = DeviceConfig::xavier_agx();
        assert!(
            (x.peak_gflops() - 1410.0).abs() < 10.0,
            "{}",
            x.peak_gflops()
        );
    }

    #[test]
    fn presets_resolve_by_canonical_name() {
        let xavier = DeviceConfig::preset("xavier-agx").expect("known preset");
        assert_eq!(xavier.name, "Jetson-AGX-Xavier");
        let turing = DeviceConfig::preset("rtx2080ti").expect("known preset");
        assert_eq!(turing.name, "RTX-2080Ti");
        assert!(DeviceConfig::preset("tpu-v9").is_none());
        for name in DeviceConfig::preset_names() {
            assert!(DeviceConfig::preset(name).is_some(), "{name}");
        }
    }

    #[test]
    fn turing_is_an_order_of_magnitude_bigger() {
        let x = DeviceConfig::xavier_agx();
        let t = DeviceConfig::rtx2080ti();
        assert!(t.peak_gflops() / x.peak_gflops() > 8.0);
        assert!(t.dram_bandwidth_gbps / x.dram_bandwidth_gbps > 4.0);
    }

    #[test]
    fn cache_geometry_sets() {
        let g = CacheGeometry {
            size_bytes: 64 * 1024,
            line_bytes: 128,
            ways: 4,
            hit_latency: 1,
        };
        assert_eq!(g.num_sets(), 128);
    }

    #[test]
    fn cycles_to_ms_round_trip() {
        let x = DeviceConfig::xavier_agx();
        let ms = x.cycles_to_ms(1.377e9);
        assert!((ms - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn device_json_round_trip() {
        for dev in [DeviceConfig::xavier_agx(), DeviceConfig::rtx2080ti()] {
            let text = dev.to_json().to_string();
            let back = DeviceConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
            // Serialization is deterministic: round-tripping reproduces the
            // exact byte string.
            assert_eq!(back.to_json().to_string(), text);
            assert_eq!(back.name, dev.name);
            assert_eq!(back.l2.size_bytes, dev.l2.size_bytes);
            assert_eq!(back.core_clock_ghz, dev.core_clock_ghz);
        }
    }

    #[test]
    fn stock_configs_validate() {
        let _quiet = defcon_support::fault::quiesce();
        DeviceConfig::xavier_agx().validate().unwrap();
        DeviceConfig::rtx2080ti().validate().unwrap();
    }

    #[test]
    fn bad_cache_geometry_is_a_typed_constraint_error() {
        let _quiet = defcon_support::fault::quiesce();
        let mut dev = DeviceConfig::xavier_agx();
        dev.l2.size_bytes = 64; // smaller than one line × ways
        let err = dev.validate().unwrap_err();
        assert!(matches!(err, DefconError::Constraint { .. }));
        assert!(err.is_degradable());
        assert!(err.to_string().contains("l2"));
    }

    #[test]
    fn bad_overlap_efficiency_rejected() {
        let _quiet = defcon_support::fault::quiesce();
        let mut dev = DeviceConfig::xavier_agx();
        dev.overlap_efficiency = 1.5;
        assert!(dev.validate().is_err());
        dev.overlap_efficiency = f64::NAN;
        assert!(dev.validate().is_err());
    }

    #[test]
    fn injected_cache_config_fault_surfaces_as_constraint() {
        use defcon_support::fault::{FaultPlan, Schedule};
        let dev = DeviceConfig::xavier_agx();
        dev.validate().unwrap();
        let _g = fault::arm(FaultPlan::new(2).point("device.cache_config", Schedule::Always));
        let err = dev.validate().unwrap_err();
        assert!(matches!(err, DefconError::Constraint { .. }));
        assert!(err.to_string().contains("injected"));
    }

    #[test]
    fn texture_limits_match_paper() {
        let x = DeviceConfig::xavier_agx();
        assert_eq!(x.max_texture_layers, 2048);
        assert_eq!(x.max_texture_dim, 32768);
    }
}
