//! The launch engine: drives block traces through the memory system and
//! integrates time with a roofline-plus-latency model.

use crate::cache::Cache;
use crate::device::DeviceConfig;
use crate::report::{Counters, KernelReport};
use crate::trace::{BlockCost, BlockTrace, TraceSink};

/// Block-sampling policy for large grids.
///
/// Simulating every thread block of a 550×550 feature map is unnecessary:
/// blocks of a convolution grid are statistically interchangeable. The
/// engine simulates a deterministic stratified sample (every `k`-th block,
/// covering the whole grid) and scales both time and counters by the
/// sampling factor.
#[derive(Clone, Copy, Debug)]
pub struct SamplePolicy {
    /// Maximum number of blocks to simulate.
    pub max_blocks: usize,
}

impl Default for SamplePolicy {
    fn default() -> Self {
        SamplePolicy { max_blocks: 96 }
    }
}

impl SamplePolicy {
    /// Simulate every block, no sampling.
    pub fn exhaustive() -> Self {
        SamplePolicy {
            max_blocks: usize::MAX,
        }
    }

    /// The stratified block indices to simulate for a `grid`-block launch.
    pub fn select(&self, grid: usize) -> Vec<usize> {
        if grid <= self.max_blocks {
            (0..grid).collect()
        } else {
            // Even stride over the grid; always includes block 0.
            let stride = grid as f64 / self.max_blocks as f64;
            (0..self.max_blocks)
                .map(|i| ((i as f64 * stride) as usize).min(grid - 1))
                .collect()
        }
    }
}

/// Average outstanding memory requests a warp can keep in flight — scales
/// how much latency the warp scheduler can hide.
const MLP_PER_WARP: f64 = 4.0;

/// The simulated GPU.
pub struct Gpu {
    cfg: DeviceConfig,
    policy: SamplePolicy,
}

impl Gpu {
    /// A GPU with the default sampling policy.
    pub fn new(cfg: DeviceConfig) -> Self {
        Gpu {
            cfg,
            policy: SamplePolicy::default(),
        }
    }

    /// Overrides the sampling policy.
    pub fn with_policy(cfg: DeviceConfig, policy: SamplePolicy) -> Self {
        Gpu { cfg, policy }
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Simulates one kernel launch and returns its report.
    ///
    /// Per-SM caches (L1, texture) are flushed between blocks — blocks are
    /// independent CTAs and, under sampling, generally not neighbours on the
    /// same SM. The L2 persists across the launch.
    pub fn launch(&self, kernel: &dyn BlockTrace) -> KernelReport {
        let grid = kernel.grid_blocks();
        assert!(grid > 0, "empty grid");
        let threads = kernel.block_threads();
        let warps = threads.div_ceil(self.cfg.warp_size);

        let mut l1 = Cache::new(self.cfg.l1);
        let mut tex = Cache::new(self.cfg.tex_cache);
        let mut l2 = Cache::new(self.cfg.l2);

        let sample = self.policy.select(grid);
        let scale = grid as f64 / sample.len() as f64;

        let mut counters = Counters::default();
        let mut sm_cycles_total = 0.0f64;
        for &b in &sample {
            l1.flush();
            tex.flush();
            let mut sink = TraceSink::new(&self.cfg, &mut l1, &mut tex, &mut l2, warps);
            kernel.trace_block(b, &mut sink);
            sm_cycles_total += self.block_cycles(&sink.cost);
            counters.merge(&sink.counters);
        }
        let counters = counters.scale(scale);

        // Kernel cycles: SM work spread over all SMs, but never faster than
        // DRAM can feed the chip.
        let sm_term = sm_cycles_total * scale / self.cfg.num_sms as f64;
        let dram_bytes = (counters.dram_read_bytes + counters.dram_write_bytes) as f64;
        let dram_term = dram_bytes / self.cfg.dram_bytes_per_cycle();
        // A grid smaller than the SM count cannot use the whole chip.
        let usable_sms = grid.min(self.cfg.num_sms) as f64;
        let sm_term = sm_term * (self.cfg.num_sms as f64 / usable_sms);
        let cycles = sm_term.max(dram_term);

        let time_ms = self.cfg.cycles_to_ms(cycles) + self.cfg.launch_overhead_us * 1e-3;
        KernelReport {
            device: self.cfg.name.clone(),
            kernel: kernel.label(),
            time_ms,
            cycles,
            grid_blocks: grid,
            simulated_blocks: sample.len(),
            counters,
        }
    }

    /// Time for one block on one SM.
    ///
    /// Each pipe's occupancy is computed independently; the busiest pipe
    /// sets the floor and a configurable fraction of the other pipes' work
    /// hides beneath it (`overlap_efficiency`). Exposed memory latency
    /// (scaled down by warp-level parallelism) bounds the result from below
    /// when occupancy is poor.
    fn block_cycles(&self, c: &BlockCost) -> f64 {
        // An FMA retires per lane per cycle; flop_units counts scalar flops
        // where an FMA contributed 2, so peak is 2×lanes per cycle.
        let compute = c.flop_units as f64 / (2.0 * self.cfg.fp32_lanes_per_sm as f64);
        let alu = c.alu_units as f64 / self.cfg.alu_lanes_per_sm as f64;
        // LSU: one 128B line (4 sectors) per cycle.
        let lsu = c.lsu_sectors as f64 / 4.0;
        let texp = c.tex_fetches_fp32 as f64 / self.cfg.tex_filter_rate_fp32
            + c.tex_fetches_fp16 as f64 / self.cfg.tex_filter_rate_fp16;
        let pipes = [compute, alu, lsu, texp];
        let busiest = pipes.iter().copied().fold(0.0f64, f64::max);
        let total: f64 = pipes.iter().sum();
        let throughput = busiest + (1.0 - self.cfg.overlap_efficiency) * (total - busiest);
        let parallelism = (c.warps.min(self.cfg.max_warps_per_sm) as f64 * MLP_PER_WARP).max(1.0);
        let latency = c.latency_cycles as f64 / parallelism;
        throughput.max(latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::texture::LayeredTexture2d;
    use crate::trace::TraceSink;

    /// A toy kernel: every block streams `loads_per_thread` coalesced loads
    /// and does `fma_per_thread` FMAs.
    struct StreamKernel {
        blocks: usize,
        threads: usize,
        loads_per_thread: usize,
        fma_per_thread: usize,
    }

    impl BlockTrace for StreamKernel {
        fn grid_blocks(&self) -> usize {
            self.blocks
        }
        fn block_threads(&self) -> usize {
            self.threads
        }
        fn trace_block(&self, block: usize, sink: &mut TraceSink) {
            let warps = self.threads / 32;
            for w in 0..warps {
                for l in 0..self.loads_per_thread {
                    let base = ((block * warps + w) * self.loads_per_thread + l) as u64 * 128;
                    let addrs: Vec<u64> = (0..32).map(|i| base + i * 4).collect();
                    sink.global_load(&addrs);
                }
                sink.fma((32 * self.fma_per_thread) as u64);
            }
        }
        fn label(&self) -> String {
            "stream".into()
        }
    }

    #[test]
    fn more_work_takes_more_time() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let small = gpu.launch(&StreamKernel {
            blocks: 16,
            threads: 256,
            loads_per_thread: 4,
            fma_per_thread: 16,
        });
        let big = gpu.launch(&StreamKernel {
            blocks: 64,
            threads: 256,
            loads_per_thread: 4,
            fma_per_thread: 16,
        });
        assert!(big.time_ms > small.time_ms);
    }

    #[test]
    fn faster_device_is_faster() {
        let k = StreamKernel {
            blocks: 256,
            threads: 256,
            loads_per_thread: 8,
            fma_per_thread: 64,
        };
        let xavier = Gpu::new(DeviceConfig::xavier_agx()).launch(&k);
        let turing = Gpu::new(DeviceConfig::rtx2080ti()).launch(&k);
        assert!(
            turing.time_ms < xavier.time_ms,
            "2080Ti {} vs Xavier {}",
            turing.time_ms,
            xavier.time_ms
        );
    }

    #[test]
    fn sampling_preserves_scale_of_counters() {
        let k = StreamKernel {
            blocks: 1000,
            threads: 64,
            loads_per_thread: 2,
            fma_per_thread: 4,
        };
        let exhaustive =
            Gpu::with_policy(DeviceConfig::xavier_agx(), SamplePolicy::exhaustive()).launch(&k);
        let sampled = Gpu::with_policy(DeviceConfig::xavier_agx(), SamplePolicy { max_blocks: 50 })
            .launch(&k);
        assert_eq!(sampled.simulated_blocks, 50);
        let ratio = sampled.counters.gld_requests as f64 / exhaustive.counters.gld_requests as f64;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "counter extrapolation off by {ratio}"
        );
        let t_ratio = sampled.time_ms / exhaustive.time_ms;
        assert!(
            (t_ratio - 1.0).abs() < 0.15,
            "time extrapolation off by {t_ratio}"
        );
    }

    #[test]
    fn sample_policy_covers_grid() {
        let p = SamplePolicy { max_blocks: 10 };
        let idx = p.select(1000);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx[0], 0);
        assert!(*idx.last().unwrap() >= 900);
        // No sampling when the grid is small.
        assert_eq!(p.select(5), vec![0, 1, 2, 3, 4]);
    }

    /// Texture-heavy vs. scattered-global kernels: the texture path must be
    /// faster — this is the microarchitectural core of the whole paper.
    struct BilinearKernel {
        use_texture: bool,
        tex: LayeredTexture2d,
        blocks: usize,
    }

    impl BlockTrace for BilinearKernel {
        fn grid_blocks(&self) -> usize {
            self.blocks
        }
        fn block_threads(&self) -> usize {
            128
        }
        fn trace_block(&self, block: usize, sink: &mut TraceSink) {
            // Each warp's 32 lanes cover consecutive output pixels; every
            // tap is one warp instruction.
            let mut out = Vec::with_capacity(32);
            for w in 0..4usize {
                let lane_pos: Vec<(f32, f32)> = (0..32)
                    .map(|lane| {
                        let t = (block * 128 + w * 32 + lane) % (56 * 56);
                        ((t / 56) as f32 + 0.37, (t % 56) as f32 + 0.61)
                    })
                    .collect();
                for tap in 0..9usize {
                    // Deformable sampling: each lane's tap lands at its own
                    // learned offset — lanes diverge by a few pixels, which
                    // is what wrecks coalescing in the software kernel.
                    let jitter = |lane: usize| {
                        let dy = ((lane * 7 + tap * 3) % 9) as f32 - 4.0 + 0.4;
                        let dx = ((lane * 5 + tap * 11) % 9) as f32 - 4.0 + 0.7;
                        (dy, dx)
                    };
                    if self.use_texture {
                        let coords: Vec<(f32, f32)> = lane_pos
                            .iter()
                            .enumerate()
                            .map(|(lane, &(y, x))| {
                                let (dy, dx) = jitter(lane);
                                (y + dy, x + dx)
                            })
                            .collect();
                        out.clear();
                        sink.tex_fetch_warp(&self.tex, 0, &coords, &mut out);
                        sink.fma(32);
                    } else {
                        // Software bilinear: 4 warp loads (one per
                        // neighbour), scattered per lane, + ~8 flops/lane.
                        for (oy, ox) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
                            let addrs: Vec<u64> = lane_pos
                                .iter()
                                .enumerate()
                                .map(|(lane, &(y, x))| {
                                    let (dy, dx) = jitter(lane);
                                    let yy = (y + dy).max(0.0) as u64 + oy;
                                    let xx = (x + dx).max(0.0) as u64 + ox;
                                    (yy * 64 + xx) * 4
                                })
                                .collect();
                            sink.global_load(&addrs);
                        }
                        sink.flop(8 * 32);
                        sink.fma(32);
                        sink.alu(6 * 32); // boundary branches + address math
                    }
                }
            }
        }
    }

    #[test]
    fn texture_bilinear_beats_software_bilinear() {
        let data = vec![1.0f32; 64 * 64];
        let mk = |use_texture| BilinearKernel {
            use_texture,
            tex: LayeredTexture2d::new(data.clone(), 1, 64, 64, 1 << 32, 2048, 32768).unwrap(),
            blocks: 64,
        };
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let sw = gpu.launch(&mk(false));
        let hw = gpu.launch(&mk(true));
        assert!(
            hw.time_ms < sw.time_ms,
            "texture path ({} ms) should beat software path ({} ms)",
            hw.time_ms,
            sw.time_ms
        );
        assert!(
            sw.counters.flops > 3 * hw.counters.flops,
            "software path should burn ~4x flops"
        );
        assert_eq!(hw.counters.gld_requests, 0);
        assert!(hw.counters.tex_requests > 0);
        assert!(sw.counters.gld_efficiency() < 100.0);
    }
}
