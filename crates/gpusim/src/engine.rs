//! The launch engine: drives block traces through the memory system and
//! integrates time with a roofline-plus-latency model.
//!
//! # Parallel simulation & the determinism contract
//!
//! [`Gpu::launch`] simulates the sampled blocks on [`SamplePolicy::threads`]
//! worker threads (via `defcon_support::par`). The sample is split into
//! *contiguous bands* — a pure function of (sample length, thread count),
//! never of scheduling — and each worker owns a **private** L1, texture
//! cache and L2 shard. Per-band cycle sums and [`Counters`] are merged in
//! band order, i.e. in ascending block-index order, so a run's report
//! depends only on (kernel, device, policy), never on thread timing.
//!
//! L2 semantics: the serial engine shares one L2 across the whole launch;
//! the parallel engine gives each worker a *cold* L2 shard, so cross-band
//! L2 reuse is not modelled. The contract, enforced by
//! `tests/engine_parallel_equivalence.rs`:
//!
//! * `threads == 1` — one band, one L2: **byte-identical** to
//!   [`Gpu::launch_serial`] (same f64 accumulation order, same cache walk).
//! * `threads > 1` — cycle estimates stay within ~1 % of the serial engine
//!   on the paper's Table II layer set (each band's first blocks run
//!   against a cold shard; with tens of blocks per band the warm majority
//!   dominates). Counter merging itself is exact (`u64` adds); only values
//!   that depend on L2 hit/miss outcomes move.
//!
//! The default thread count comes from the `DEFCON_THREADS` env var and is
//! **1 when unset**: parallelism is opt-in, so unadorned runs reproduce the
//! golden reports bit-for-bit on any machine.

use crate::cache::Cache;
use crate::device::DeviceConfig;
use crate::report::{Counters, KernelReport};
use crate::trace::{BlockCost, BlockTrace, TexStats, TraceSink};
use defcon_support::error::DefconError;
use defcon_support::json::Json;
use defcon_support::obs;
use defcon_support::par::ParallelSliceMut;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Simulator worker threads implied by the environment: the
/// `DEFCON_THREADS` env var if set to a positive integer, else **1**.
///
/// Unlike `defcon_support::par::max_threads` (which defaults to all
/// available cores for bit-exact data-parallel loops), the *engine* default
/// is serial, because multi-threaded launches change the L2 shard semantics
/// — see the module docs for the full contract.
pub fn default_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        defcon_support::env::or_die(defcon_support::env::threads_override()).unwrap_or(1)
    })
}

/// Block-sampling policy for large grids.
///
/// Simulating every thread block of a 550×550 feature map is unnecessary:
/// blocks of a convolution grid are statistically interchangeable. The
/// engine simulates a deterministic stratified sample (every `k`-th block,
/// covering the whole grid) and scales both time and counters by the
/// sampling factor.
#[derive(Clone, Copy, Debug)]
pub struct SamplePolicy {
    /// Maximum number of blocks to simulate.
    pub max_blocks: usize,
    /// Worker threads for [`Gpu::launch`] (≥ 1). See the module docs for
    /// what changes when this exceeds 1. Defaults to [`default_threads`].
    pub threads: usize,
}

impl Default for SamplePolicy {
    fn default() -> Self {
        SamplePolicy {
            max_blocks: 96,
            threads: default_threads(),
        }
    }
}

impl SamplePolicy {
    /// Simulate every block, no sampling.
    pub fn exhaustive() -> Self {
        SamplePolicy {
            max_blocks: usize::MAX,
            ..SamplePolicy::default()
        }
    }

    /// The same policy with an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// The stratified block indices to simulate for a `grid`-block launch.
    ///
    /// Index `i` maps to `⌊i·grid/max_blocks⌋`, computed exactly in `u128`.
    /// Because `grid > max_blocks` on this path, consecutive indices differ
    /// by at least 1, so the sample is strictly increasing — the previous
    /// `f64` stride with a `(i·stride).min(grid-1)` tail clamp could emit
    /// duplicate indices near the end of large grids, double-counting those
    /// blocks after scaling.
    pub fn select(&self, grid: usize) -> Vec<usize> {
        assert!(self.max_blocks > 0, "max_blocks must be positive");
        if grid <= self.max_blocks {
            (0..grid).collect()
        } else {
            let mut sample: Vec<usize> = (0..self.max_blocks)
                .map(|i| (i as u128 * grid as u128 / self.max_blocks as u128) as usize)
                .collect();
            // Belt and braces: the exact arithmetic above cannot repeat an
            // index, but a duplicate would silently skew the scale factor,
            // so keep the dedup (a no-op pass on a sorted vec).
            sample.dedup();
            debug_assert!(sample.windows(2).all(|w| w[0] < w[1]));
            debug_assert!(*sample.last().unwrap() < grid);
            sample
        }
    }
}

/// Average outstanding memory requests a warp can keep in flight — scales
/// how much latency the warp scheduler can hide.
const MLP_PER_WARP: f64 = 4.0;

/// Unrecorded warmup blocks replayed into each band's L2 shard (from the
/// tail of the preceding band) before the band proper is measured. Shared
/// tensors — the offset map above all — stay L2-resident across sampled
/// blocks in the serial engine; without warmup the cold shards lose that
/// reuse and cycle estimates drift far past the 1 % contract (~10 % on the
/// Table II im2col kernel). Eight blocks of replay brings every Table II
/// kernel back under 1 % while costing a fixed, band-count-proportional
/// overhead that vanishes for exhaustive launches.
const BAND_WARMUP_BLOCKS: usize = 8;

/// A per-request virtual-time budget with a cooperative cancellation
/// token (the serving layer's deadline enforcement — DESIGN.md §12).
///
/// Virtual, never wall clock: `charge` is fed each completed launch's
/// *simulated* cycle count, so whether a budget trips is a pure function
/// of (request, budget), byte-reproducible across machines and thread
/// counts. Spent cycles accumulate as `ceil(cycles)` per launch — an
/// integer, so accumulation order cannot change the total through float
/// rounding.
///
/// The cancellation flag only ever transitions *between* launches (it is
/// charged on the launching thread after each launch completes, or set by
/// an explicit [`DeadlineBudget::cancel`]): band workers inside
/// [`Gpu::launch`] check it when they pick up their band, see a single
/// consistent value for the whole launch, and unwind as a unit — so a
/// cancelled launch is all-or-nothing, never a torn report.
#[derive(Debug)]
pub struct DeadlineBudget {
    budget_cycles: u64,
    spent_cycles: AtomicU64,
    cancelled: AtomicBool,
}

impl DeadlineBudget {
    /// A fresh budget of `budget_cycles` virtual cycles.
    pub fn new(budget_cycles: u64) -> Self {
        DeadlineBudget {
            budget_cycles,
            spent_cycles: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
        }
    }

    /// The configured budget.
    pub fn budget_cycles(&self) -> u64 {
        self.budget_cycles
    }

    /// Virtual cycles charged so far.
    pub fn spent_cycles(&self) -> u64 {
        self.spent_cycles.load(Ordering::SeqCst)
    }

    /// Budget not yet spent (0 when exceeded).
    pub fn remaining_cycles(&self) -> u64 {
        self.budget_cycles.saturating_sub(self.spent_cycles())
    }

    /// True once the spend has passed the budget.
    pub fn exceeded(&self) -> bool {
        self.spent_cycles() > self.budget_cycles
    }

    /// Requests cooperative cancellation: in-flight band workers unwind
    /// at their next between-bands check, future launches fail at entry.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// True when cancellation was requested (explicitly or by an
    /// over-budget charge).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// The integer charge for a launch of `cycles` simulated cycles:
    /// `ceil`, clamped to `[0, u64::MAX]`. Public so the serving layer's
    /// cache-hit verdict can replay *exactly* the arithmetic a live
    /// budget applies.
    pub fn charge_units(cycles: f64) -> u64 {
        if cycles <= 0.0 {
            0
        } else if cycles >= u64::MAX as f64 {
            u64::MAX
        } else {
            cycles.ceil() as u64
        }
    }

    /// Charges `cycles` simulated cycles (rounded up to an integer) and
    /// returns whether the budget still holds; an over-budget charge also
    /// raises the cancellation flag so the next launch fails fast.
    pub fn charge(&self, cycles: f64) -> bool {
        let units = Self::charge_units(cycles);
        let prev = self.spent_cycles.fetch_add(units, Ordering::SeqCst);
        let total = prev.saturating_add(units);
        if total > self.budget_cycles {
            self.cancel();
            false
        } else {
            true
        }
    }

    /// The typed error a tripped budget surfaces. Carries only the budget
    /// (never the spend at detection — see the variant docs).
    pub fn deadline_error(&self, what: &str) -> DefconError {
        DefconError::DeadlineExceeded {
            what: what.to_string(),
            budget_cycles: self.budget_cycles,
        }
    }
}

/// The simulated GPU.
pub struct Gpu {
    cfg: DeviceConfig,
    policy: SamplePolicy,
    /// Optional deadline budget; when attached, launches check the
    /// cancellation token and charge their cycles. `None` (the default)
    /// is byte-identical to the pre-budget engine.
    budget: Option<Arc<DeadlineBudget>>,
}

impl Gpu {
    /// A GPU with the default sampling policy.
    pub fn new(cfg: DeviceConfig) -> Self {
        Gpu {
            cfg,
            policy: SamplePolicy::default(),
            budget: None,
        }
    }

    /// Overrides the sampling policy.
    pub fn with_policy(cfg: DeviceConfig, policy: SamplePolicy) -> Self {
        Gpu {
            cfg,
            policy,
            budget: None,
        }
    }

    /// Attaches a deadline budget: subsequent launches via
    /// [`Gpu::launch_checked`] / [`Gpu::try_launch`] fail with
    /// [`DefconError::DeadlineExceeded`] once the budget is cancelled or
    /// exhausted, and each completed launch charges its simulated cycles.
    pub fn with_budget(mut self, budget: Arc<DeadlineBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The attached deadline budget, if any.
    pub fn budget(&self) -> Option<&Arc<DeadlineBudget>> {
        self.budget.as_ref()
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Sampling policy.
    pub fn policy(&self) -> SamplePolicy {
        self.policy
    }

    /// Simulates one kernel launch and returns its report.
    ///
    /// Per-SM caches (L1, texture) are flushed between blocks — blocks are
    /// independent CTAs and, under sampling, generally not neighbours on the
    /// same SM. The sampled blocks are simulated on
    /// [`SamplePolicy::threads`] workers, each owning a private L2 shard;
    /// results merge in block-index order (see the module docs for the
    /// determinism contract). With one thread this is byte-identical to
    /// [`Gpu::launch_serial`].
    /// [`Gpu::launch`] behind validation: the device config and launch
    /// shape are checked first and violations come back as typed
    /// [`DefconError`]s instead of the panics `launch` raises on malformed
    /// input. Use this on paths fed by external configuration.
    pub fn try_launch(
        &self,
        kernel: &dyn BlockTrace,
    ) -> Result<KernelReport, defcon_support::error::DefconError> {
        self.cfg.validate()?;
        let constraint = |detail: String| defcon_support::error::DefconError::Constraint {
            what: "launch".to_string(),
            detail,
        };
        if kernel.grid_blocks() == 0 {
            return Err(constraint("empty grid (grid_blocks() == 0)".to_string()));
        }
        if kernel.block_threads() == 0 {
            return Err(constraint("empty block (block_threads() == 0)".to_string()));
        }
        self.launch_impl(kernel)
    }

    pub fn launch(&self, kernel: &dyn BlockTrace) -> KernelReport {
        self.launch_impl(kernel)
            .expect("launch(): deadline budget tripped — use launch_checked on budgeted paths")
    }

    /// [`Gpu::launch`] returning a `Result`: when a [`DeadlineBudget`] is
    /// attached and is (or becomes) cancelled/exhausted, the launch fails
    /// with [`DefconError::DeadlineExceeded`] instead of panicking. Without
    /// a budget this never fails and is byte-identical to `launch`.
    pub fn launch_checked(&self, kernel: &dyn BlockTrace) -> Result<KernelReport, DefconError> {
        self.launch_impl(kernel)
    }

    fn launch_impl(&self, kernel: &dyn BlockTrace) -> Result<KernelReport, DefconError> {
        // Fail fast between launches: the token only transitions on the
        // owner thread (charge / explicit cancel), so this entry check is
        // deterministic for a fixed (request, budget) pair.
        if let Some(b) = &self.budget {
            if b.is_cancelled() || b.exceeded() {
                return Err(b.deadline_error(&format!("launch {}", kernel.label())));
            }
        }
        let grid = kernel.grid_blocks();
        assert!(grid > 0, "empty grid");
        let warps = kernel.block_threads().div_ceil(self.cfg.warp_size);

        let sample = self.policy.select(grid);
        let threads = self.policy.threads.max(1).min(sample.len());
        let ranges = band_ranges(sample.len(), threads);

        let launch_span = obs::span_with("gpusim.launch", || {
            vec![
                ("kernel", Json::str(kernel.label())),
                ("grid_blocks", Json::from(grid)),
                ("sampled_blocks", Json::from(sample.len())),
                ("bands", Json::from(threads)),
            ]
        });

        // One result slot per band; `par` hands each worker exactly one
        // chunk (chunk size 1, band count == thread count), so the slot a
        // worker fills is fixed by its band index, not by scheduling. Slots
        // are `Option` so a worker that observes the cancellation token can
        // unwind without producing a band — any `None` after the join means
        // the launch was cancelled mid-flight.
        let mut bands: Vec<Option<(f64, Counters, TexStats)>> = vec![None; threads];
        bands
            .par_chunks_mut(1)
            .threads(threads)
            .enumerate()
            .for_each(|(b, slot)| {
                // Cooperative cancellation: the token is checked once, when
                // the worker picks up its band. It only flips between
                // launches (owner-thread charge or explicit cancel), so
                // either every worker sees it set (no bands simulated) or
                // none does — a cancelled launch is all-or-nothing.
                if let Some(budget) = &self.budget {
                    if budget.is_cancelled() {
                        return;
                    }
                }
                // Cold-shard mitigation: replay the tail of the previous
                // band into this band's L2 without recording, so the shard
                // enters the band roughly as warm as the serial L2 would be
                // at this point in the sample. Band 0 has no predecessor —
                // it starts exactly like the serial engine, which is what
                // keeps the single-band (threads = 1) case byte-identical.
                let start = ranges[b].start;
                let warmup = &sample[start.saturating_sub(BAND_WARMUP_BLOCKS)..start];
                slot[0] =
                    Some(self.simulate_band(kernel, warmup, &sample[ranges[b].clone()], warps));
            });

        // A cancel raised while workers ran (or a worker that unwound
        // without filling its slot) fails the whole launch — the partial
        // band results are discarded, never merged into a torn report.
        if let Some(b) = &self.budget {
            if b.is_cancelled() || bands.iter().any(Option::is_none) {
                return Err(b.deadline_error(&format!("launch {}", kernel.label())));
            }
        }
        let bands: Vec<(f64, Counters, TexStats)> = bands
            .into_iter()
            .map(|slot| slot.expect("unfilled band without a budget"))
            .collect();

        // Merge in band order == ascending block-index order. With a single
        // band the f64 additions happen in exactly the serial order. Per-band
        // spans are recorded here — on the owner thread, in band-index order —
        // never from the workers, so the trace stays deterministic under the
        // parallel contract.
        let obs_on = obs::armed();
        let mut sm_cycles_total = 0.0f64;
        let mut counters = Counters::default();
        let mut tex_stats = TexStats::default();
        for (b, (cycles, c, t)) in bands.iter().enumerate() {
            if obs_on {
                let warmup_blocks =
                    ranges[b].start - ranges[b].start.saturating_sub(BAND_WARMUP_BLOCKS);
                let band_span = obs::span_with("gpusim.band", || {
                    vec![
                        ("band", Json::from(b)),
                        ("blocks", Json::from(ranges[b].len())),
                        ("cycles", Json::from(*cycles)),
                        ("l1_hits", Json::from(c.l1_hits)),
                        ("l1_accesses", Json::from(c.l1_accesses)),
                        ("tex_hits", Json::from(c.tex_hits)),
                        ("tex_line_accesses", Json::from(c.tex_line_accesses)),
                        ("l2_hits", Json::from(c.l2_hits)),
                        ("l2_accesses", Json::from(c.l2_accesses)),
                        ("l1_hit_rate", Json::from(c.l1_hit_rate())),
                        ("tex_hit_rate", Json::from(c.tex_hit_rate())),
                        ("l2_hit_rate", Json::from(c.l2_hit_rate())),
                    ]
                });
                drop(obs::span_with("gpusim.band.warmup", || {
                    vec![("blocks", Json::from(warmup_blocks))]
                }));
                drop(obs::span_with("gpusim.band.measured", || {
                    vec![
                        ("blocks", Json::from(ranges[b].len())),
                        ("cycles", Json::from(*cycles)),
                    ]
                }));
                drop(band_span);
            }
            sm_cycles_total += cycles;
            counters.merge(c);
            tex_stats.merge(t);
        }
        if obs_on {
            // Pre-scale aggregates: the exact sums of the per-band span args
            // above (the obs_invariants suite recombines them).
            launch_span.record("cycles", Json::from(sm_cycles_total));
            launch_span.record("l1_hits", Json::from(counters.l1_hits));
            launch_span.record("l1_accesses", Json::from(counters.l1_accesses));
            launch_span.record("tex_hits", Json::from(counters.tex_hits));
            launch_span.record("tex_line_accesses", Json::from(counters.tex_line_accesses));
            launch_span.record("l2_hits", Json::from(counters.l2_hits));
            launch_span.record("l2_accesses", Json::from(counters.l2_accesses));
            launch_span.record("l1_hit_rate", Json::from(counters.l1_hit_rate()));
            launch_span.record("tex_hit_rate", Json::from(counters.tex_hit_rate()));
            launch_span.record("l2_hit_rate", Json::from(counters.l2_hit_rate()));
            // Texture-unit stats are exact per-block sums (the sampler runs
            // identically whatever the band decomposition), so they recombine
            // exactly across thread counts like the private-cache counters.
            launch_span.record("tex_fetch_lanes", Json::from(tex_stats.fetch_lanes));
            launch_span.record("tex_filter_texels", Json::from(tex_stats.filter_texels));
            launch_span.record("tex_plan_warps", Json::from(tex_stats.plan_warps));
            launch_span.record("tex_plan_evals", Json::from(tex_stats.plan_evals));
            counters.record_obs("gpusim");
            // Sampler-level instrumentation (lanes fetched, texels blended,
            // plans staged/replayed) lives outside `Counters` so the report
            // JSON and its content-addressed serving keys stay byte-stable;
            // it reaches consumers only through the obs registry.
            tex_stats.record_obs("gpusim");
        }
        let report = self.finish_report(kernel, grid, sample.len(), sm_cycles_total, counters);
        // Owner-thread charge, after the launch completes: `ceil(cycles)`
        // integer units, so the running spend is order-exact. An over-budget
        // charge fails *this* launch (its report is discarded) and cancels
        // the token so the next one fails at entry.
        if let Some(b) = &self.budget {
            if !b.charge(report.cycles) {
                return Err(b.deadline_error(&format!("launch {}", kernel.label())));
            }
        }
        Ok(report)
    }

    /// The reference single-threaded engine: walks every sampled block in
    /// order through one shared, launch-persistent L2. Kept verbatim as the
    /// semantics baseline the parallel path is validated against.
    pub fn launch_serial(&self, kernel: &dyn BlockTrace) -> KernelReport {
        let grid = kernel.grid_blocks();
        assert!(grid > 0, "empty grid");
        let warps = kernel.block_threads().div_ceil(self.cfg.warp_size);

        let sample = self.policy.select(grid);
        let (sm_cycles_total, counters, _tex_stats) =
            self.simulate_band(kernel, &[], &sample, warps);
        self.finish_report(kernel, grid, sample.len(), sm_cycles_total, counters)
    }

    /// Simulates a contiguous band of sampled blocks against private caches
    /// (one L2 shard for the band; L1/texture flushed per block) and returns
    /// the band's cycle sum and merged counters. Blocks in `warmup` are
    /// traced first purely to populate the L2 shard — their cycles and
    /// counters are discarded.
    fn simulate_band(
        &self,
        kernel: &dyn BlockTrace,
        warmup: &[usize],
        blocks: &[usize],
        warps: usize,
    ) -> (f64, Counters, TexStats) {
        let mut l1 = Cache::new(self.cfg.l1);
        let mut tex = Cache::new(self.cfg.tex_cache);
        let mut l2 = Cache::new(self.cfg.l2);

        for &b in warmup {
            l1.flush();
            tex.flush();
            let mut sink = TraceSink::new(&self.cfg, &mut l1, &mut tex, &mut l2, warps);
            kernel.trace_block(b, &mut sink);
        }
        l1.flush();
        tex.flush();

        let mut counters = Counters::default();
        let mut tex_stats = TexStats::default();
        let mut sm_cycles = 0.0f64;
        for &b in blocks {
            l1.flush();
            tex.flush();
            let mut sink = TraceSink::new(&self.cfg, &mut l1, &mut tex, &mut l2, warps);
            kernel.trace_block(b, &mut sink);
            sm_cycles += self.block_cycles(&sink.cost);
            counters.merge(&sink.counters);
            tex_stats.merge(&sink.tex_stats);
        }
        (sm_cycles, counters, tex_stats)
    }

    /// Extrapolates sampled totals to the full grid and integrates time.
    fn finish_report(
        &self,
        kernel: &dyn BlockTrace,
        grid: usize,
        simulated: usize,
        sm_cycles_total: f64,
        counters: Counters,
    ) -> KernelReport {
        let scale = grid as f64 / simulated as f64;
        let counters = counters.scale(scale);

        // Kernel cycles: SM work spread over all SMs, but never faster than
        // DRAM can feed the chip.
        let sm_term = sm_cycles_total * scale / self.cfg.num_sms as f64;
        let dram_bytes = (counters.dram_read_bytes + counters.dram_write_bytes) as f64;
        let dram_term = dram_bytes / self.cfg.dram_bytes_per_cycle();
        // A grid smaller than the SM count cannot use the whole chip.
        let usable_sms = grid.min(self.cfg.num_sms) as f64;
        let sm_term = sm_term * (self.cfg.num_sms as f64 / usable_sms);
        let cycles = sm_term.max(dram_term);

        let time_ms = self.cfg.cycles_to_ms(cycles) + self.cfg.launch_overhead_us * 1e-3;
        KernelReport {
            device: self.cfg.name.clone(),
            kernel: kernel.label(),
            time_ms,
            cycles,
            grid_blocks: grid,
            simulated_blocks: simulated,
            counters,
        }
    }

    /// Time for one block on one SM.
    ///
    /// Each pipe's occupancy is computed independently; the busiest pipe
    /// sets the floor and a configurable fraction of the other pipes' work
    /// hides beneath it (`overlap_efficiency`). Exposed memory latency
    /// (scaled down by warp-level parallelism) bounds the result from below
    /// when occupancy is poor.
    fn block_cycles(&self, c: &BlockCost) -> f64 {
        // An FMA retires per lane per cycle; flop_units counts scalar flops
        // where an FMA contributed 2, so peak is 2×lanes per cycle.
        let compute = c.flop_units as f64 / (2.0 * self.cfg.fp32_lanes_per_sm as f64);
        let alu = c.alu_units as f64 / self.cfg.alu_lanes_per_sm as f64;
        // LSU: one 128B line (4 sectors) per cycle.
        let lsu = c.lsu_sectors as f64 / 4.0;
        let texp = c.tex_fetches_fp32 as f64 / self.cfg.tex_filter_rate_fp32
            + c.tex_fetches_fp16 as f64 / self.cfg.tex_filter_rate_fp16;
        let pipes = [compute, alu, lsu, texp];
        let busiest = pipes.iter().copied().fold(0.0f64, f64::max);
        let total: f64 = pipes.iter().sum();
        let throughput = busiest + (1.0 - self.cfg.overlap_efficiency) * (total - busiest);
        let parallelism = (c.warps.min(self.cfg.max_warps_per_sm) as f64 * MLP_PER_WARP).max(1.0);
        let latency = c.latency_cycles as f64 / parallelism;
        throughput.max(latency)
    }
}

/// Balanced contiguous band boundaries: the first `n % bands` bands get one
/// extra element. A pure function of `(n, bands)` — this is what makes the
/// parallel launch deterministic for a fixed thread count.
fn band_ranges(n: usize, bands: usize) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::with_capacity(bands);
    let mut start = 0usize;
    for b in 0..bands {
        let len = n / bands + usize::from(b < n % bands);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::texture::LayeredTexture2d;
    use crate::trace::TraceSink;
    use defcon_support::json::ToJson;

    /// A toy kernel: every block streams `loads_per_thread` coalesced loads
    /// and does `fma_per_thread` FMAs.
    struct StreamKernel {
        blocks: usize,
        threads: usize,
        loads_per_thread: usize,
        fma_per_thread: usize,
    }

    impl BlockTrace for StreamKernel {
        fn grid_blocks(&self) -> usize {
            self.blocks
        }
        fn block_threads(&self) -> usize {
            self.threads
        }
        fn trace_block(&self, block: usize, sink: &mut TraceSink) {
            let warps = self.threads / 32;
            for w in 0..warps {
                for l in 0..self.loads_per_thread {
                    let base = ((block * warps + w) * self.loads_per_thread + l) as u64 * 128;
                    let addrs: Vec<u64> = (0..32).map(|i| base + i * 4).collect();
                    sink.global_load(&addrs);
                }
                sink.fma((32 * self.fma_per_thread) as u64);
            }
        }
        fn label(&self) -> String {
            "stream".into()
        }
    }

    #[test]
    fn more_work_takes_more_time() {
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let small = gpu.launch(&StreamKernel {
            blocks: 16,
            threads: 256,
            loads_per_thread: 4,
            fma_per_thread: 16,
        });
        let big = gpu.launch(&StreamKernel {
            blocks: 64,
            threads: 256,
            loads_per_thread: 4,
            fma_per_thread: 16,
        });
        assert!(big.time_ms > small.time_ms);
    }

    #[test]
    fn faster_device_is_faster() {
        let k = StreamKernel {
            blocks: 256,
            threads: 256,
            loads_per_thread: 8,
            fma_per_thread: 64,
        };
        let xavier = Gpu::new(DeviceConfig::xavier_agx()).launch(&k);
        let turing = Gpu::new(DeviceConfig::rtx2080ti()).launch(&k);
        assert!(
            turing.time_ms < xavier.time_ms,
            "2080Ti {} vs Xavier {}",
            turing.time_ms,
            xavier.time_ms
        );
    }

    #[test]
    fn sampling_preserves_scale_of_counters() {
        let k = StreamKernel {
            blocks: 1000,
            threads: 64,
            loads_per_thread: 2,
            fma_per_thread: 4,
        };
        let exhaustive =
            Gpu::with_policy(DeviceConfig::xavier_agx(), SamplePolicy::exhaustive()).launch(&k);
        let sampled = Gpu::with_policy(
            DeviceConfig::xavier_agx(),
            SamplePolicy {
                max_blocks: 50,
                ..SamplePolicy::default()
            },
        )
        .launch(&k);
        assert_eq!(sampled.simulated_blocks, 50);
        // StreamKernel issues the same load count in every block, so the
        // stratified sample must extrapolate the counter *exactly* (up to
        // the ±0.5 scale rounding) — not merely "within 5%".
        let ratio = sampled.counters.gld_requests as f64 / exhaustive.counters.gld_requests as f64;
        assert!(
            (ratio - 1.0).abs() < 1e-9,
            "counter extrapolation off by {ratio}"
        );
        let t_ratio = sampled.time_ms / exhaustive.time_ms;
        assert!(
            (t_ratio - 1.0).abs() < 0.15,
            "time extrapolation off by {t_ratio}"
        );
    }

    #[test]
    fn prop_sampled_extrapolation_error_is_bounded() {
        use defcon_support::prop::{self, Config};
        use defcon_support::rng::Rng;

        // For a block-homogeneous kernel, sampled-then-scaled counters must
        // match the exhaustive run to within the scale() rounding of ±0.5
        // per counter — a tight bound on the extrapolation machinery itself.
        prop::check(
            "sampled counters extrapolate exactly for homogeneous kernels",
            &Config::cases(12),
            |rng| {
                (
                    rng.gen_range(100usize..800),
                    rng.gen_range(10usize..60),
                    rng.gen_range(1usize..4),
                )
            },
            |&(blocks, max_blocks, loads_per_thread)| {
                let k = StreamKernel {
                    blocks,
                    threads: 64,
                    loads_per_thread,
                    fma_per_thread: 4,
                };
                let exhaustive =
                    Gpu::with_policy(DeviceConfig::xavier_agx(), SamplePolicy::exhaustive())
                        .launch(&k);
                let sampled = Gpu::with_policy(
                    DeviceConfig::xavier_agx(),
                    SamplePolicy {
                        max_blocks,
                        ..SamplePolicy::default()
                    },
                )
                .launch(&k);
                for (name, got, want) in [
                    (
                        "gld_requests",
                        sampled.counters.gld_requests,
                        exhaustive.counters.gld_requests,
                    ),
                    ("flops", sampled.counters.flops, exhaustive.counters.flops),
                    (
                        "gld_transactions",
                        sampled.counters.gld_transactions,
                        exhaustive.counters.gld_transactions,
                    ),
                ] {
                    let err = (got as f64 - want as f64).abs();
                    defcon_support::prop_assert!(
                        err <= 1.0,
                        "{name}: sampled {got} vs exhaustive {want} \
                         (blocks {blocks}, max_blocks {max_blocks})"
                    );
                }
                Ok(())
            },
        );
    }

    #[test]
    fn sample_policy_covers_grid() {
        let p = SamplePolicy {
            max_blocks: 10,
            ..SamplePolicy::default()
        };
        let idx = p.select(1000);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx[0], 0);
        assert!(*idx.last().unwrap() >= 900);
        // No sampling when the grid is small.
        assert_eq!(p.select(5), vec![0, 1, 2, 3, 4]);
    }

    /// Regression for the tail-clamp bug: the old `f64` stride with
    /// `.min(grid - 1)` could repeat indices near the end of large grids;
    /// the exact integer mapping must stay strictly increasing (hence
    /// duplicate-free) and in-range on stress geometries.
    #[test]
    fn sample_indices_unique_sorted_in_range_on_stress_grids() {
        let cases: &[(usize, usize)] = &[
            (1000, 10),
            (97, 96),
            (1_000_000, 96),
            ((1usize << 53) + 3, 96),      // beyond exact f64 integer range
            ((1usize << 60) + 7, 1000),    // huge grid, fine stride
            (1_000_003, 1_000_002),        // stride barely above 1
            (u32::MAX as usize * 11, 777), // irrational-ish ratio
        ];
        for &(grid, max_blocks) in cases {
            let p = SamplePolicy {
                max_blocks,
                ..SamplePolicy::default()
            };
            let idx = p.select(grid);
            assert_eq!(
                idx.len(),
                max_blocks.min(grid),
                "({grid},{max_blocks}): wrong sample size"
            );
            assert_eq!(idx[0], 0, "({grid},{max_blocks}): block 0 missing");
            assert!(
                idx.windows(2).all(|w| w[0] < w[1]),
                "({grid},{max_blocks}): duplicate or unsorted index"
            );
            assert!(
                *idx.last().unwrap() < grid,
                "({grid},{max_blocks}): index out of range"
            );
            // Tail coverage: the last sampled block sits within one stride
            // of the end of the grid.
            assert!(
                grid - idx.last().unwrap() <= grid.div_ceil(max_blocks),
                "({grid},{max_blocks}): tail of the grid not covered"
            );
        }
    }

    /// The determinism contract, part 1: one worker thread is byte-identical
    /// to the reference serial engine.
    #[test]
    fn one_thread_launch_matches_serial_bytes() {
        let k = StreamKernel {
            blocks: 300,
            threads: 128,
            loads_per_thread: 3,
            fma_per_thread: 8,
        };
        let gpu = Gpu::with_policy(
            DeviceConfig::xavier_agx(),
            SamplePolicy::default().with_threads(1),
        );
        let serial = gpu.launch_serial(&k).to_json().to_string();
        let parallel = gpu.launch(&k).to_json().to_string();
        assert_eq!(parallel, serial);
    }

    /// The determinism contract, part 2: a fixed multi-thread count always
    /// produces the same bytes, and stays near the serial estimate.
    #[test]
    fn multi_thread_launch_is_deterministic_and_close_to_serial() {
        let k = StreamKernel {
            blocks: 500,
            threads: 128,
            loads_per_thread: 3,
            fma_per_thread: 8,
        };
        let gpu4 = Gpu::with_policy(
            DeviceConfig::xavier_agx(),
            SamplePolicy::default().with_threads(4),
        );
        let a = gpu4.launch(&k).to_json().to_string();
        let b = gpu4.launch(&k).to_json().to_string();
        assert_eq!(a, b, "same thread count must give the same bytes");

        let serial = gpu4.launch_serial(&k);
        let par = gpu4.launch(&k);
        let rel = (par.cycles - serial.cycles).abs() / serial.cycles;
        assert!(
            rel <= 0.01,
            "4-thread cycles diverged {:.3}% from serial",
            rel * 100.0
        );
    }

    /// Texture-heavy vs. scattered-global kernels: the texture path must be
    /// faster — this is the microarchitectural core of the whole paper.
    struct BilinearKernel {
        use_texture: bool,
        tex: LayeredTexture2d,
        blocks: usize,
    }

    impl BlockTrace for BilinearKernel {
        fn grid_blocks(&self) -> usize {
            self.blocks
        }
        fn block_threads(&self) -> usize {
            128
        }
        fn trace_block(&self, block: usize, sink: &mut TraceSink) {
            // Each warp's 32 lanes cover consecutive output pixels; every
            // tap is one warp instruction.
            let mut out = Vec::with_capacity(32);
            for w in 0..4usize {
                let lane_pos: Vec<(f32, f32)> = (0..32)
                    .map(|lane| {
                        let t = (block * 128 + w * 32 + lane) % (56 * 56);
                        ((t / 56) as f32 + 0.37, (t % 56) as f32 + 0.61)
                    })
                    .collect();
                for tap in 0..9usize {
                    // Deformable sampling: each lane's tap lands at its own
                    // learned offset — lanes diverge by a few pixels, which
                    // is what wrecks coalescing in the software kernel.
                    let jitter = |lane: usize| {
                        let dy = ((lane * 7 + tap * 3) % 9) as f32 - 4.0 + 0.4;
                        let dx = ((lane * 5 + tap * 11) % 9) as f32 - 4.0 + 0.7;
                        (dy, dx)
                    };
                    if self.use_texture {
                        let coords: Vec<(f32, f32)> = lane_pos
                            .iter()
                            .enumerate()
                            .map(|(lane, &(y, x))| {
                                let (dy, dx) = jitter(lane);
                                (y + dy, x + dx)
                            })
                            .collect();
                        out.clear();
                        sink.tex_fetch_warp(&self.tex, 0, &coords, &mut out);
                        sink.fma(32);
                    } else {
                        // Software bilinear: 4 warp loads (one per
                        // neighbour), scattered per lane, + ~8 flops/lane.
                        for (oy, ox) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
                            let addrs: Vec<u64> = lane_pos
                                .iter()
                                .enumerate()
                                .map(|(lane, &(y, x))| {
                                    let (dy, dx) = jitter(lane);
                                    let yy = (y + dy).max(0.0) as u64 + oy;
                                    let xx = (x + dx).max(0.0) as u64 + ox;
                                    (yy * 64 + xx) * 4
                                })
                                .collect();
                            sink.global_load(&addrs);
                        }
                        sink.flop(8 * 32);
                        sink.fma(32);
                        sink.alu(6 * 32); // boundary branches + address math
                    }
                }
            }
        }
    }

    #[test]
    fn texture_bilinear_beats_software_bilinear() {
        let data = vec![1.0f32; 64 * 64];
        let mk = |use_texture| BilinearKernel {
            use_texture,
            tex: LayeredTexture2d::new(data.clone(), 1, 64, 64, 1 << 32, 2048, 32768).unwrap(),
            blocks: 64,
        };
        let gpu = Gpu::new(DeviceConfig::xavier_agx());
        let sw = gpu.launch(&mk(false));
        let hw = gpu.launch(&mk(true));
        assert!(
            hw.time_ms < sw.time_ms,
            "texture path ({} ms) should beat software path ({} ms)",
            hw.time_ms,
            sw.time_ms
        );
        assert!(
            sw.counters.flops > 3 * hw.counters.flops,
            "software path should burn ~4x flops"
        );
        assert_eq!(hw.counters.gld_requests, 0);
        assert!(hw.counters.tex_requests > 0);
        assert!(sw.counters.gld_efficiency() < 100.0);
    }

    /// The texture path's advantage must survive parallel simulation too —
    /// the cold L2 shards penalize both paths, not just one.
    #[test]
    fn texture_still_wins_under_parallel_simulation() {
        let data = vec![1.0f32; 64 * 64];
        let mk = |use_texture| BilinearKernel {
            use_texture,
            tex: LayeredTexture2d::new(data.clone(), 1, 64, 64, 1 << 32, 2048, 32768).unwrap(),
            blocks: 64,
        };
        let gpu = Gpu::with_policy(
            DeviceConfig::xavier_agx(),
            SamplePolicy::default().with_threads(4),
        );
        let sw = gpu.launch(&mk(false));
        let hw = gpu.launch(&mk(true));
        assert!(hw.time_ms < sw.time_ms);
    }

    #[test]
    fn budget_charges_per_launch_and_trips_across_launches() {
        let k = StreamKernel {
            blocks: 64,
            threads: 128,
            loads_per_thread: 3,
            fma_per_thread: 8,
        };
        // Measure one launch to size the budget: room for exactly two.
        let probe = Gpu::new(DeviceConfig::xavier_agx()).launch(&k);
        let per_launch = probe.cycles.ceil() as u64;
        let budget = Arc::new(DeadlineBudget::new(2 * per_launch));
        let gpu = Gpu::new(DeviceConfig::xavier_agx()).with_budget(Arc::clone(&budget));

        let r1 = gpu.launch_checked(&k).expect("first launch fits");
        let r2 = gpu.launch_checked(&k).expect("second launch fits exactly");
        assert_eq!(budget.spent_cycles(), 2 * per_launch);
        assert!(!budget.exceeded());
        // Third launch pushes the spend past the budget: the launch fails,
        // its report is discarded, and the token is now cancelled.
        let e = gpu.launch_checked(&k).unwrap_err();
        assert!(matches!(
            e,
            DefconError::DeadlineExceeded { budget_cycles, .. } if budget_cycles == 2 * per_launch
        ));
        assert!(budget.is_cancelled());
        // Fourth fails at entry, without simulating anything.
        assert!(gpu.launch_checked(&k).is_err());
        // The two completed reports are bytes-identical to unbudgeted runs.
        assert_eq!(r1.to_json().to_string(), probe.to_json().to_string());
        assert_eq!(r2.to_json().to_string(), probe.to_json().to_string());
    }

    #[test]
    fn pre_cancelled_budget_fails_at_entry() {
        let k = StreamKernel {
            blocks: 16,
            threads: 64,
            loads_per_thread: 1,
            fma_per_thread: 1,
        };
        let budget = Arc::new(DeadlineBudget::new(u64::MAX));
        budget.cancel();
        let gpu = Gpu::new(DeviceConfig::xavier_agx()).with_budget(Arc::clone(&budget));
        let e = gpu.launch_checked(&k).unwrap_err();
        assert!(matches!(e, DefconError::DeadlineExceeded { .. }));
        assert_eq!(budget.spent_cycles(), 0, "nothing was simulated");
    }

    #[test]
    fn generous_budget_is_byte_identical_to_no_budget() {
        let k = StreamKernel {
            blocks: 300,
            threads: 128,
            loads_per_thread: 3,
            fma_per_thread: 8,
        };
        for threads in [1usize, 4] {
            let plain = Gpu::with_policy(
                DeviceConfig::xavier_agx(),
                SamplePolicy::default().with_threads(threads),
            );
            let budgeted = Gpu::with_policy(
                DeviceConfig::xavier_agx(),
                SamplePolicy::default().with_threads(threads),
            )
            .with_budget(Arc::new(DeadlineBudget::new(u64::MAX)));
            assert_eq!(
                budgeted
                    .launch_checked(&k)
                    .expect("u64::MAX budget cannot trip")
                    .to_json()
                    .to_string(),
                plain.launch(&k).to_json().to_string(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn mid_flight_cancel_unwinds_parallel_launch_cleanly() {
        // Cancel raised by another thread while the banded launch runs: the
        // launch must come back Err (never a torn report, never a panic).
        // The token may flip before, during, or after the band loop — all
        // three outcomes are legal here; what the test pins is that a raised
        // token is always *eventually* fatal and never corrupts a report.
        let k = StreamKernel {
            blocks: 2000,
            threads: 256,
            loads_per_thread: 8,
            fma_per_thread: 32,
        };
        let budget = Arc::new(DeadlineBudget::new(u64::MAX));
        let gpu = Gpu::with_policy(
            DeviceConfig::xavier_agx(),
            SamplePolicy::exhaustive().with_threads(2),
        )
        .with_budget(Arc::clone(&budget));
        let canceller = {
            let b = Arc::clone(&budget);
            std::thread::spawn(move || b.cancel())
        };
        let first = gpu.launch_checked(&k);
        canceller.join().unwrap();
        if let Ok(report) = first {
            // Raced ahead of the cancel: the completed report must be exact.
            let plain = Gpu::with_policy(
                DeviceConfig::xavier_agx(),
                SamplePolicy::exhaustive().with_threads(2),
            );
            assert_eq!(
                report.to_json().to_string(),
                plain.launch(&k).to_json().to_string()
            );
        }
        // Once the token is set, every subsequent launch fails at entry.
        let e = gpu.launch_checked(&k).unwrap_err();
        assert!(matches!(e, DefconError::DeadlineExceeded { .. }));
    }

    #[test]
    fn band_ranges_partition_exactly() {
        for n in [0usize, 1, 7, 96, 97, 1225] {
            for bands in [1usize, 2, 3, 4, 7, 16] {
                let r = band_ranges(n, bands);
                assert_eq!(r.len(), bands);
                assert_eq!(r[0].start, 0);
                assert_eq!(r.last().unwrap().end, n);
                for w in r.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "bands must be contiguous");
                }
                let (min, max) = r
                    .iter()
                    .map(|x| x.len())
                    .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
                assert!(max - min <= 1, "bands must be balanced");
            }
        }
    }
}
