//! Set-associative LRU cache model.

use crate::device::CacheGeometry;

/// Result of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line filled from the next level.
    Miss,
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags are full line addresses; each set's ways are kept in
/// **most-recent-first order** (move-to-front on hit, insert-at-front on
/// fill), so the last valid entry *is* the LRU victim — no timestamp array,
/// no second victim scan. The model tracks hits and misses only — data
/// never moves through it (numerics live on the CPU side of each kernel).
///
/// Recency ordering is observationally identical to stamp-based LRU: an
/// access's hit/miss outcome depends only on the set's membership, and both
/// schemes evict the least-recently-used line when a full set misses (the
/// per-set recency order is a strict total order either way). The
/// `tests/hot_path_equivalence.rs` property test pins this against the
/// allocating reference walk.
///
/// `access_line` is on the simulator's critical path (every sector of every
/// warp load walks L1→L2 through it), so the layout is tuned for the probe:
/// a set is one contiguous run of `ways` tags — 32 B for a 4-way L1, one
/// hardware cache line — and set indexing uses a mask when the set count is
/// a power of two (`line & (sets-1)` instead of the `%` division), with a
/// checked modulo fallback for the geometries that are not (the Xavier
/// texture cache has 96 sets). Both index paths compute the same value
/// wherever both apply.
pub struct Cache {
    geometry: CacheGeometry,
    sets: usize,
    /// `Some(sets - 1)` when the set count is a power of two.
    set_mask: Option<u64>,
    /// `tags[set * geometry.ways ..][..geometry.ways]`, most-recent-first;
    /// `u64::MAX` = invalid. Valid tags always form a prefix of the set.
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty cache from a geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.num_sets();
        Cache {
            geometry,
            sets,
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            tags: vec![u64::MAX; sets * geometry.ways],
            hits: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.geometry.line_bytes
    }

    /// Maps a byte address to its line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.geometry.line_bytes as u64
    }

    /// Accesses one byte address; loads the containing line on miss.
    pub fn access(&mut self, addr: u64) -> Access {
        self.access_line(self.line_of(addr))
    }

    /// Set index of a line: mask for power-of-two set counts, modulo
    /// otherwise. Both give `line mod sets`; the mask skips the division.
    #[inline]
    fn set_of(&self, line: u64) -> usize {
        match self.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.sets as u64) as usize,
        }
    }

    /// Accesses one *line* address directly (the coalescer works in lines).
    ///
    /// One forward scan handles everything: a matching tag is a hit
    /// (rotated to the front to refresh recency), an invalid tag ends the
    /// valid prefix so the new line fills that slot (again at the front),
    /// and scanning off the end means the set is full and the last — least
    /// recent — entry falls off as the new line is inserted.
    pub fn access_line(&mut self, line: u64) -> Access {
        let ways = self.geometry.ways;
        let base = self.set_of(line) * ways;
        let set = &mut self.tags[base..base + ways];

        let mut w = ways - 1;
        for (i, &tag) in set.iter().enumerate() {
            if tag == line {
                set.copy_within(0..i, 1);
                set[0] = line;
                self.hits += 1;
                return Access::Hit;
            }
            if tag == u64::MAX {
                w = i;
                break;
            }
        }
        // Miss: insert at the front; the entry at `w` (the first free slot,
        // or the LRU line when the set is full) is overwritten by the shift.
        set.copy_within(0..w, 1);
        set[0] = line;
        self.misses += 1;
        Access::Miss
    }

    /// Counts a hit for a line the caller knows sits at the MRU front of
    /// its set — i.e. the line of this cache's immediately preceding
    /// [`Cache::access_line`], with no flush in between. Equivalent to the
    /// probe it replaces (which would hit at way 0 and move nothing), just
    /// without the scan; callers on the sector walk use it to collapse
    /// runs of same-line sectors.
    #[inline]
    pub fn note_mru_hit(&mut self) {
        self.hits += 1;
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Invalidates all lines but keeps the statistics (used between thread
    /// blocks for per-SM caches).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
    }

    /// Zeroes the statistics.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::CacheGeometry;

    fn tiny() -> Cache {
        // 4 sets * 2 ways * 64B lines = 512 B
        Cache::new(CacheGeometry {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
            hit_latency: 1,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(4), Access::Hit); // same line
        assert_eq!(c.access(64), Access::Miss); // next line
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines in the same set (stride = sets * line = 256B).
        c.access(0);
        c.access(256);
        c.access(512); // evicts line 0
        assert_eq!(c.access(256), Access::Hit);
        assert_eq!(c.access(0), Access::Miss);
    }

    #[test]
    fn lru_refresh_on_hit() {
        let mut c = tiny();
        c.access(0);
        c.access(256);
        c.access(0); // refresh line 0
        c.access(512); // should evict 256, not 0
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(256), Access::Miss);
    }

    #[test]
    fn flush_clears_contents_not_stats() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_within_capacity_all_hits_on_second_pass() {
        let mut c = tiny();
        for i in 0..8 {
            c.access(i * 64);
        }
        c.reset_stats();
        for i in 0..8 {
            assert_eq!(c.access(i * 64), Access::Hit, "line {i}");
        }
    }
}
