//! Set-associative LRU cache model.

use crate::device::CacheGeometry;

/// Result of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line filled from the next level.
    Miss,
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags are full line addresses; timestamps implement LRU. The model tracks
/// hits and misses only — data never moves through it (numerics live on the
/// CPU side of each kernel).
pub struct Cache {
    geometry: CacheGeometry,
    sets: usize,
    /// `tags[set * ways + way]`, `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Per-line last-use stamps for LRU.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty cache from a geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.num_sets();
        Cache {
            geometry,
            sets,
            tags: vec![u64::MAX; sets * geometry.ways],
            stamps: vec![0; sets * geometry.ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.geometry.line_bytes
    }

    /// Maps a byte address to its line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.geometry.line_bytes as u64
    }

    /// Accesses one byte address; loads the containing line on miss.
    pub fn access(&mut self, addr: u64) -> Access {
        self.access_line(self.line_of(addr))
    }

    /// Accesses one *line* address directly (the coalescer works in lines).
    pub fn access_line(&mut self, line: u64) -> Access {
        self.clock += 1;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.geometry.ways;
        let ways = &mut self.tags[base..base + self.geometry.ways];

        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.clock;
            self.hits += 1;
            return Access::Hit;
        }
        // Miss: replace LRU way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.geometry.ways {
            let s = self.stamps[base + w];
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        self.misses += 1;
        Access::Miss
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Invalidates all lines but keeps the statistics (used between thread
    /// blocks for per-SM caches).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
    }

    /// Zeroes the statistics.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::CacheGeometry;

    fn tiny() -> Cache {
        // 4 sets * 2 ways * 64B lines = 512 B
        Cache::new(CacheGeometry {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
            hit_latency: 1,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(4), Access::Hit); // same line
        assert_eq!(c.access(64), Access::Miss); // next line
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines in the same set (stride = sets * line = 256B).
        c.access(0);
        c.access(256);
        c.access(512); // evicts line 0
        assert_eq!(c.access(256), Access::Hit);
        assert_eq!(c.access(0), Access::Miss);
    }

    #[test]
    fn lru_refresh_on_hit() {
        let mut c = tiny();
        c.access(0);
        c.access(256);
        c.access(0); // refresh line 0
        c.access(512); // should evict 256, not 0
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(256), Access::Miss);
    }

    #[test]
    fn flush_clears_contents_not_stats() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_within_capacity_all_hits_on_second_pass() {
        let mut c = tiny();
        for i in 0..8 {
            c.access(i * 64);
        }
        c.reset_stats();
        for i in 0..8 {
            assert_eq!(c.access(i * 64), Access::Hit, "line {i}");
        }
    }
}
