//! # defcon-gpusim
//!
//! A warp-level GPU timing simulator purpose-built to reproduce the
//! *microarchitectural* effects the DEFCON paper exploits:
//!
//! * a **memory coalescer** that converts each warp's 32 lane addresses into
//!   32-byte sector transactions (the quantity `nvprof` reports as
//!   `gld_transactions`, and from which `gld_efficiency` is derived),
//! * set-associative, LRU **L1 / L2 / texture caches** with a
//!   bandwidth-limited DRAM behind them,
//! * a **texture unit** implementing *2-D layered textures* in a
//!   block-linear texel layout with border / clamp / wrap / mirror
//!   addressing and hardware bilinear filtering at full (`tex2D`) or
//!   reduced (`tex2D++`) filter precision,
//! * a **roofline-with-latency** timing model per thread block: block time
//!   is the max of its compute-, memory- and texture-pipe occupancies plus
//!   exposed latency scaled by warp-level parallelism, and kernel time is
//!   block time integrated over SM waves.
//!
//! Device presets model the two boards in the paper's evaluation: the
//! NVIDIA Jetson AGX Xavier ([`DeviceConfig::xavier_agx`]) and the RTX
//! 2080 Ti ([`DeviceConfig::rtx2080ti`]).
//!
//! The simulator is *trace driven*: kernels (see `defcon-kernels`) describe
//! each thread block's work through a [`trace::TraceSink`]; the engine
//! replays the trace through the memory system and integrates time. For
//! large grids a deterministic stratified sample of blocks is simulated and
//! scaled ([`engine::SamplePolicy`]).
//!
//! Launches run on [`engine::SamplePolicy::threads`] worker threads
//! (default `DEFCON_THREADS`, else serial) under a determinism contract —
//! one thread is byte-identical to [`engine::Gpu::launch_serial`], any
//! fixed thread count is reproducible, and multi-threaded cycle estimates
//! stay within 1 % of serial. See the [`engine`] module docs.
//!
//! This is a *model*, not a cycle-accurate twin: absolute times are
//! approximate, but the mechanisms that differentiate software bilinear
//! interpolation from texture-hardware sampling — extra scattered global
//! loads, extra FLOPs, coalescing behaviour, dedicated texture cache and
//! filter pipes — are all represented explicitly, which is what makes the
//! paper's comparisons reproducible in shape.

pub mod cache;
pub mod coalesce;
pub mod device;
pub mod engine;
pub mod mipmap;
pub mod report;
pub mod texture;
pub mod trace;

pub use device::DeviceConfig;
pub use engine::{default_threads, DeadlineBudget, Gpu, SamplePolicy};
pub use report::{Counters, KernelReport};
pub use texture::{AddressMode, FilterMode, LayeredTexture2d};
pub use trace::{BlockTrace, TraceSink};
