//! 2-D layered textures: block-linear texel layout, addressing modes and
//! hardware (bi)linear filtering (paper §III-B).
//!
//! A *layered* texture is a stack of same-sized 2-D textures; DEFCON maps
//! one (batch, channel) feature-map slice to each layer and lets the texture
//! unit perform the bilinear interpolation that deformable convolution
//! otherwise does in software. Out-of-bounds handling (the boundary branches
//! of the software kernel) is absorbed by the addressing mode.

/// How out-of-range coordinates are resolved (paper §III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddressMode {
    /// Out-of-bounds texels read as zero — the default, and the semantics
    /// deformable convolution needs (paper: "the value of out-of-bounds
    /// neighbors is taken as zero").
    Border,
    /// Clamp to the edge texel.
    Clamp,
    /// `x → frac(x)` tiling (normalized-coordinate wrap).
    Wrap,
    /// Mirrored tiling.
    Mirror,
}

/// Texture filtering mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterMode {
    /// Nearest-texel lookup.
    Point,
    /// Hardware bilinear filtering with interpolation-weight fractions
    /// quantized to `frac_bits` binary places. `frac_bits = 23` models full
    /// fp32 filtering (`tex2D`); `frac_bits = 8` models the reduced 16-bit
    /// filter arithmetic of `tex2D++` (a half-precision weight keeps ~8
    /// fractional bits over the `[0,1)` range). The paper stresses this is
    /// *not* quantization of the feature map — texel values stay fp32.
    Linear {
        /// Binary places kept in the interpolation fraction.
        frac_bits: u32,
    },
}

/// Texel tile geometry of the block-linear layout: 8×4 texels × 4 bytes =
/// 128 bytes = exactly one cache line, so 2-D locality maps to line reuse.
const TILE_W: usize = 8;
/// Tile height in texels.
const TILE_H: usize = 4;
/// Bytes per texel (fp32).
const TEXEL_BYTES: usize = 4;
/// Bytes per tile.
const TILE_BYTES: usize = TILE_W * TILE_H * TEXEL_BYTES;

/// Error raised when a texture would exceed the device limits of §III-B.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextureLimitError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TextureLimitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TextureLimitError {}

/// A 2-D layered texture bound to fp32 data.
pub struct LayeredTexture2d {
    data: Vec<f32>,
    layers: usize,
    height: usize,
    width: usize,
    tiles_x: usize,
    tiles_y: usize,
    /// Block-linear bytes per layer (`tiles_x · tiles_y · TILE_BYTES`),
    /// precomputed so the per-fetch address math is three adds and a
    /// multiply instead of rebuilding the stride every texel.
    layer_bytes: u64,
    /// Row-major texels per layer (`height · width`), precomputed for the
    /// same reason on the value side.
    layer_texels: usize,
    /// Base byte address of the texture in the simulated address space.
    base_addr: u64,
    /// Addressing mode for both coordinates.
    pub address_mode: AddressMode,
    /// Filtering mode.
    pub filter_mode: FilterMode,
}

/// One texture fetch: the filtered value plus the byte addresses of every
/// texel the filter actually read (for the texture-cache model).
#[derive(Clone, Debug)]
pub struct Fetch {
    /// Filtered sample.
    pub value: f32,
    /// Texel byte addresses touched (0–4 entries).
    pub addresses: [u64; 4],
    /// Number of valid entries in `addresses`.
    pub len: u8,
}

/// The layer-independent half of a texture fetch: filter weights, in-layer
/// texel indices, and layer-relative block-linear byte offsets for every
/// texel the filter will read, in contribution order.
///
/// A plan is computed once per coordinate by [`LayeredTexture2d::plan_fetch`]
/// (floor/quantize/address-mode resolution — the expensive part) and then
/// replayed against any layer by [`LayeredTexture2d::eval_plan`], which is a
/// weighted sum plus a base-address add. The deformable kernels exploit this:
/// every channel of a deform group shares the same sampling coordinate, so
/// one plan serves `C_in / G` layers. `Copy + Default` so warp batches fit a
/// fixed-capacity `LaneBuf` scratch (no heap in the trace hot path).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FetchPlan {
    /// Per-texel filter weights (`wy · wx`), contribution order.
    pub weights: [f32; 4],
    /// Layer-relative block-linear byte offsets of the texels.
    pub rel_addrs: [u64; 4],
    /// In-layer row-major texel indices (`y · width + x`).
    pub indices: [u32; 4],
    /// Number of valid entries.
    pub len: u8,
}

impl std::fmt::Debug for LayeredTexture2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayeredTexture2d")
            .field("layers", &self.layers)
            .field("height", &self.height)
            .field("width", &self.width)
            .field("address_mode", &self.address_mode)
            .field("filter_mode", &self.filter_mode)
            .finish_non_exhaustive()
    }
}

impl LayeredTexture2d {
    /// Creates a layered texture from row-major layer data
    /// (`data.len() == layers * height * width`). `max_layers` / `max_dim`
    /// are the device limits (2048 and 32768 on Xavier).
    pub fn new(
        data: Vec<f32>,
        layers: usize,
        height: usize,
        width: usize,
        base_addr: u64,
        max_layers: usize,
        max_dim: usize,
    ) -> Result<Self, TextureLimitError> {
        // Fault point: a texture allocation the driver rejects even though
        // the request is nominally within limits (fragmentation, transient
        // driver state). Lets tests exercise the kernel fallback chain
        // without building >2048-layer inputs.
        if defcon_support::fault::fires("texture.limit") {
            return Err(TextureLimitError {
                message: format!(
                    "injected fault: texture.limit ({layers} layers, {height}×{width})"
                ),
            });
        }
        if layers > max_layers {
            return Err(TextureLimitError {
                message: format!(
                    "layered texture needs {layers} layers but the device supports {max_layers}; \
                     batch × channels must fit the layer limit (paper §III-B)"
                ),
            });
        }
        if height > max_dim || width > max_dim {
            return Err(TextureLimitError {
                message: format!("texture extent {height}×{width} exceeds device limit {max_dim}"),
            });
        }
        assert_eq!(
            data.len(),
            layers * height * width,
            "texture data length mismatch"
        );
        let tiles_x = width.div_ceil(TILE_W);
        let tiles_y = height.div_ceil(TILE_H);
        Ok(LayeredTexture2d {
            data,
            layers,
            height,
            width,
            tiles_x,
            tiles_y,
            layer_bytes: (tiles_x * tiles_y * TILE_BYTES) as u64,
            layer_texels: height * width,
            base_addr,
            address_mode: AddressMode::Border,
            filter_mode: FilterMode::Linear { frac_bits: 23 },
        })
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Layer height in texels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Layer width in texels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total footprint in bytes (block-linear, padded to whole tiles).
    pub fn size_bytes(&self) -> usize {
        self.layers * self.tiles_x * self.tiles_y * TILE_BYTES
    }

    /// Layer-relative block-linear byte offset of in-layer texel `(y, x)`.
    ///
    /// The full address decomposes exactly into
    /// `base + layer·layer_bytes + rel(y, x)`; splitting it this way lets
    /// [`FetchPlan`]s stay layer-independent and keeps the per-texel math to
    /// two divides/mods and two multiply-adds (all integer — bit-exact
    /// against the legacy single-expression form).
    #[inline]
    fn rel_addr(&self, y: usize, x: usize) -> u64 {
        let (ty, tx) = (y / TILE_H, x / TILE_W);
        let (iy, ix) = (y % TILE_H, x % TILE_W);
        ((ty * self.tiles_x + tx) * TILE_BYTES) as u64 + ((iy * TILE_W + ix) * TEXEL_BYTES) as u64
    }

    /// Block-linear byte address of texel `(layer, y, x)`.
    #[inline]
    pub fn texel_addr(&self, layer: usize, y: usize, x: usize) -> u64 {
        debug_assert!(layer < self.layers && y < self.height && x < self.width);
        self.base_addr + layer as u64 * self.layer_bytes + self.rel_addr(y, x)
    }

    /// Raw texel value (no filtering, in-bounds only).
    #[inline]
    pub fn texel(&self, layer: usize, y: usize, x: usize) -> f32 {
        self.data[layer * self.layer_texels + y * self.width + x]
    }

    /// Resolves one integer coordinate through the addressing mode.
    /// Returns `None` when the texel reads as zero (border mode).
    #[inline]
    fn resolve(&self, coord: isize, extent: usize) -> Option<usize> {
        let n = extent as isize;
        match self.address_mode {
            AddressMode::Border => {
                if coord < 0 || coord >= n {
                    None
                } else {
                    Some(coord as usize)
                }
            }
            AddressMode::Clamp => Some(coord.clamp(0, n - 1) as usize),
            AddressMode::Wrap => Some(coord.rem_euclid(n) as usize),
            AddressMode::Mirror => {
                let period = (2 * n) as usize;
                let m = coord.rem_euclid(period as isize) as usize;
                Some(if m < extent { m } else { period - 1 - m })
            }
        }
    }

    /// Computes the layer-independent [`FetchPlan`] for fractional
    /// coordinates `(y, x)` (texel centers at integer coordinates).
    ///
    /// This is the expensive half of a fetch — floor, fraction
    /// quantization, and address-mode resolution — restructured so the
    /// addressing mode is resolved once per *axis endpoint* (≤ 4 calls)
    /// instead of once per texel visit, and each surviving row's tile/index
    /// components are computed once and reused across its columns. Texel
    /// visit order, the zero-weight skips, and the weight products are
    /// exactly those of the legacy path, so the plan replays to
    /// bit-identical values and addresses.
    pub fn plan_fetch(&self, y: f32, x: f32) -> FetchPlan {
        let mut plan = FetchPlan::default();
        match self.filter_mode {
            FilterMode::Point => {
                let qy = self.resolve(y.round() as isize, self.height);
                let qx = self.resolve(x.round() as isize, self.width);
                if let (Some(ry), Some(rx)) = (qy, qx) {
                    plan.weights[0] = 1.0;
                    plan.rel_addrs[0] = self.rel_addr(ry, rx);
                    plan.indices[0] = (ry * self.width + rx) as u32;
                    plan.len = 1;
                }
            }
            FilterMode::Linear { frac_bits } => {
                let y0 = y.floor();
                let x0 = x.floor();
                let (dy, dx) = if frac_bits >= 23 {
                    (y - y0, x - x0)
                } else {
                    let scale = (1u32 << frac_bits) as f32;
                    let inv = 1.0 / scale; // 2^-k: exact, so `· inv ≡ / scale`
                    (
                        ((y - y0) * scale).round() * inv,
                        ((x - x0) * scale).round() * inv,
                    )
                };
                let (y0, x0) = (y0 as isize, x0 as isize);
                // Address-mode resolution hoisted out of the 2×2 texel loop:
                // each axis endpoint resolves once, rows precompute their
                // tile/index components once.
                let rows = [
                    (self.resolve(y0, self.height), 1.0 - dy),
                    (self.resolve(y0 + 1, self.height), dy),
                ];
                let cols = [
                    (self.resolve(x0, self.width), 1.0 - dx),
                    (self.resolve(x0 + 1, self.width), dx),
                ];
                for (ry, wy) in rows {
                    if wy == 0.0 {
                        continue;
                    }
                    let Some(ry) = ry else {
                        continue;
                    };
                    let (ty, iy) = (ry / TILE_H, ry % TILE_H);
                    let row_rel =
                        (ty * self.tiles_x * TILE_BYTES + iy * TILE_W * TEXEL_BYTES) as u64;
                    let row_idx = ry * self.width;
                    for (rx, wx) in cols {
                        if wx == 0.0 {
                            continue;
                        }
                        let Some(rx) = rx else {
                            continue;
                        };
                        let (tx, ix) = (rx / TILE_W, rx % TILE_W);
                        let n = plan.len as usize;
                        plan.weights[n] = wy * wx;
                        plan.rel_addrs[n] = row_rel + (tx * TILE_BYTES + ix * TEXEL_BYTES) as u64;
                        plan.indices[n] = (row_idx + rx) as u32;
                        plan.len += 1;
                    }
                }
            }
        }
        plan
    }

    /// Replays a [`FetchPlan`] against one layer: weighted sum of the
    /// planned texels plus the layer's base-address offset. Accumulation
    /// order and products match the legacy per-texel loop bit for bit.
    #[inline]
    pub fn eval_plan(&self, plan: &FetchPlan, layer: usize) -> Fetch {
        let layer_base = self.base_addr + layer as u64 * self.layer_bytes;
        let texels = &self.data[layer * self.layer_texels..(layer + 1) * self.layer_texels];
        let mut value = 0.0f32;
        let mut addresses = [0u64; 4];
        let len = plan.len as usize;
        for i in 0..len {
            value += plan.weights[i] * texels[plan.indices[i] as usize];
            addresses[i] = layer_base + plan.rel_addrs[i];
        }
        Fetch {
            value,
            addresses,
            len: plan.len,
        }
    }

    /// Fetches the texture at fractional coordinates `(y, x)` (texel centers
    /// at integer coordinates, matching the CPU reference sampler).
    pub fn fetch(&self, layer: usize, y: f32, x: f32) -> Fetch {
        self.eval_plan(&self.plan_fetch(y, x), layer)
    }

    /// Verbatim pre-rewrite fetch path (per-texel address-mode resolution,
    /// stride math rebuilt per texel, branchy 2×2 walk). Retained as the
    /// oracle for the hot-path equivalence bench and the boundary property
    /// tests — [`LayeredTexture2d::fetch`] must match it bit for bit.
    pub fn fetch_legacy(&self, layer: usize, y: f32, x: f32) -> Fetch {
        match self.filter_mode {
            FilterMode::Point => {
                let qy = self.resolve(y.round() as isize, self.height);
                let qx = self.resolve(x.round() as isize, self.width);
                match (qy, qx) {
                    (Some(qy), Some(qx)) => Fetch {
                        value: self.texel(layer, qy, qx),
                        addresses: [self.texel_addr_legacy(layer, qy, qx), 0, 0, 0],
                        len: 1,
                    },
                    _ => Fetch {
                        value: 0.0,
                        addresses: [0; 4],
                        len: 0,
                    },
                }
            }
            FilterMode::Linear { frac_bits } => {
                let y0 = y.floor();
                let x0 = x.floor();
                let quant = |f: f32| -> f32 {
                    if frac_bits >= 23 {
                        f
                    } else {
                        let scale = (1u32 << frac_bits) as f32;
                        (f * scale).round() / scale
                    }
                };
                let dy = quant(y - y0);
                let dx = quant(x - x0);
                let (y0, x0) = (y0 as isize, x0 as isize);
                let mut value = 0.0f32;
                let mut addresses = [0u64; 4];
                let mut len = 0u8;
                for (qy, wy) in [(y0, 1.0 - dy), (y0 + 1, dy)] {
                    if wy == 0.0 {
                        continue;
                    }
                    let Some(ry) = self.resolve(qy, self.height) else {
                        continue;
                    };
                    for (qx, wx) in [(x0, 1.0 - dx), (x0 + 1, dx)] {
                        if wx == 0.0 {
                            continue;
                        }
                        let Some(rx) = self.resolve(qx, self.width) else {
                            continue;
                        };
                        value += wy * wx * self.texel(layer, ry, rx);
                        addresses[len as usize] = self.texel_addr_legacy(layer, ry, rx);
                        len += 1;
                    }
                }
                Fetch {
                    value,
                    addresses,
                    len,
                }
            }
        }
    }

    /// The pre-rewrite texel address computation (layer stride rebuilt on
    /// every call), kept for [`LayeredTexture2d::fetch_legacy`].
    #[inline]
    fn texel_addr_legacy(&self, layer: usize, y: usize, x: usize) -> u64 {
        let (ty, tx) = (y / TILE_H, x / TILE_W);
        let (iy, ix) = (y % TILE_H, x % TILE_W);
        let layer_bytes = (self.tiles_x * self.tiles_y * TILE_BYTES) as u64;
        self.base_addr
            + layer as u64 * layer_bytes
            + ((ty * self.tiles_x + tx) * TILE_BYTES) as u64
            + ((iy * TILE_W + ix) * TEXEL_BYTES) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tex(h: usize, w: usize) -> LayeredTexture2d {
        let data: Vec<f32> = (0..h * w).map(|v| v as f32).collect();
        LayeredTexture2d::new(data, 1, h, w, 0, 2048, 32768).unwrap()
    }

    #[test]
    fn layer_limit_enforced() {
        let err = LayeredTexture2d::new(vec![0.0; 3000], 3000, 1, 1, 0, 2048, 32768).unwrap_err();
        assert!(err.message.contains("2048"));
    }

    #[test]
    fn dim_limit_enforced() {
        assert!(LayeredTexture2d::new(vec![0.0; 40000], 1, 1, 40000, 0, 2048, 32768).is_err());
    }

    #[test]
    fn fetch_at_texel_centers_is_exact() {
        let t = tex(6, 6);
        for y in 0..6 {
            for x in 0..6 {
                let f = t.fetch(0, y as f32, x as f32);
                assert_eq!(f.value, (y * 6 + x) as f32);
                assert_eq!(f.len, 1, "integer coordinate should touch one texel");
            }
        }
    }

    #[test]
    fn fetch_midpoint_bilinear() {
        let t = tex(2, 2);
        let f = t.fetch(0, 0.5, 0.5);
        assert!((f.value - 1.5).abs() < 1e-6); // mean of 0,1,2,3
        assert_eq!(f.len, 4);
    }

    #[test]
    fn border_mode_zeroes_outside() {
        let t = tex(3, 3);
        assert_eq!(t.fetch(0, -2.0, 0.0).value, 0.0);
        assert_eq!(t.fetch(0, -2.0, 0.0).len, 0);
        // Half-in: two texels contribute, weight 0.5.
        let f = t.fetch(0, -0.5, 0.0);
        assert!((f.value - 0.0).abs() < 1e-6); // texel (0,0)=0 → 0·0.5
        let f = t.fetch(0, -0.5, 1.0);
        assert!((f.value - 0.5).abs() < 1e-6); // texel (0,1)=1 → 1·0.5
    }

    #[test]
    fn clamp_mode_repeats_edge() {
        let mut t = tex(3, 3);
        t.address_mode = AddressMode::Clamp;
        assert_eq!(t.fetch(0, -5.0, 0.0).value, t.texel(0, 0, 0));
        assert_eq!(t.fetch(0, 10.0, 2.0).value, t.texel(0, 2, 2));
    }

    #[test]
    fn wrap_mode_tiles() {
        let mut t = tex(4, 4);
        t.address_mode = AddressMode::Wrap;
        assert_eq!(t.fetch(0, 5.0, 1.0).value, t.texel(0, 1, 1));
        assert_eq!(t.fetch(0, -1.0, 0.0).value, t.texel(0, 3, 0));
    }

    #[test]
    fn mirror_mode_reflects() {
        let mut t = tex(4, 4);
        t.address_mode = AddressMode::Mirror;
        assert_eq!(t.fetch(0, 4.0, 0.0).value, t.texel(0, 3, 0)); // 4 reflects to 3
        assert_eq!(t.fetch(0, -1.0, 0.0).value, t.texel(0, 0, 0)); // -1 reflects to 0
    }

    #[test]
    fn reduced_precision_error_is_bounded() {
        // tex2D++ (8 fractional bits) must stay within one quantum of full
        // precision: |err| ≤ 2^-8 · (range of neighbours).
        let t_full = tex(16, 16);
        let mut t_red = tex(16, 16);
        t_red.filter_mode = FilterMode::Linear { frac_bits: 8 };
        for i in 0..200 {
            let y = (i as f32 * 0.073) % 14.0;
            let x = (i as f32 * 0.117) % 14.0;
            let a = t_full.fetch(0, y, x).value;
            let b = t_red.fetch(0, y, x).value;
            // Neighbour values differ by ≤ 17 here (one row apart).
            assert!(
                (a - b).abs() <= 17.0 / 256.0 + 1e-5,
                "at ({y},{x}): {a} vs {b}"
            );
        }
    }

    #[test]
    fn block_linear_keeps_2d_neighbourhood_in_one_line() {
        // Texels inside one 8×4 tile share one 128-byte line.
        let t = tex(32, 32);
        let a = t.texel_addr(0, 0, 0) / 128;
        for y in 0..4 {
            for x in 0..8 {
                assert_eq!(
                    t.texel_addr(0, y, x) / 128,
                    a,
                    "texel ({y},{x}) left the tile line"
                );
            }
        }
        // A row-major layout would spread those 4 rows over 4 lines.
        assert_ne!(t.texel_addr(0, 4, 0) / 128, a);
    }

    #[test]
    fn bilinear_footprint_spans_at_most_two_lines_in_tile_interior() {
        let t = tex(64, 64);
        let f = t.fetch(0, 9.5, 9.5); // interior of a tile
        let mut lines: Vec<u64> = f.addresses[..f.len as usize]
            .iter()
            .map(|a| a / 128)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        assert!(lines.len() <= 2, "footprint used {} lines", lines.len());
    }

    #[test]
    fn size_bytes_padded_to_tiles() {
        let t = tex(5, 9); // tiles: 2 (y) x 2 (x) = 4 tiles = 512B
        assert_eq!(t.size_bytes(), 512);
    }
}
