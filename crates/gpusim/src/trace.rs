//! The trace interface between kernels and the timing engine.
//!
//! A kernel implements [`BlockTrace`]; the engine calls
//! [`BlockTrace::trace_block`] once per simulated thread block, handing it a
//! [`TraceSink`]. The sink processes every event *immediately* — coalescing
//! warp loads, walking the cache hierarchy, bumping counters and
//! accumulating pipe occupancies — so traces never materialize in memory.

use crate::cache::{Access, Cache};
use crate::coalesce::{coalesce, coalesce_into, SECTOR_BYTES};
use crate::device::DeviceConfig;
use crate::report::Counters;
use crate::texture::{FetchPlan, FilterMode, LayeredTexture2d};
pub use defcon_support::lanebuf::LaneBuf;

/// Per-fetch texture-unit statistics, kept **outside** [`Counters`] so the
/// report JSON (and every golden snapshot / serving cache key derived from
/// it) is unchanged. These feed the observability registry as
/// `gpusim.texture.*` counters and the launch span, and exist to make the
/// texture hot loop visible: how many lane fetches ran, how many texels the
/// filter actually read (border clipping shrinks the 2×2 quad), and how
/// often a staged warp plan was replayed across layers without re-planning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TexStats {
    /// Lane-level filtered fetches issued.
    pub fetch_lanes: u64,
    /// Texels read by the filter across all lane fetches (≤ 4 per lane).
    pub filter_texels: u64,
    /// Warp-level coordinate stagings (each computes one set of
    /// [`FetchPlan`]s: floor, quantize, address-mode resolution).
    pub plan_warps: u64,
    /// Warp-level texture instructions issued from staged plans. The excess
    /// over `plan_warps` is per-coordinate planning work the batched
    /// `kernels::fused` path avoided by reusing one plan across the layers
    /// of a deform group.
    pub plan_evals: u64,
}

impl TexStats {
    /// Accumulates another block's / band's stats.
    pub fn merge(&mut self, other: &TexStats) {
        self.fetch_lanes += other.fetch_lanes;
        self.filter_texels += other.filter_texels;
        self.plan_warps += other.plan_warps;
        self.plan_evals += other.plan_evals;
    }

    /// Publishes the stats to the observability registry under
    /// `{prefix}.texture.*`. No-op (single relaxed atomic load) when the
    /// obs layer is disarmed.
    pub fn record_obs(&self, prefix: &str) {
        if !defcon_support::obs::armed() {
            return;
        }
        defcon_support::obs::counter_add(
            &format!("{prefix}.texture.fetch_lanes"),
            self.fetch_lanes,
        );
        defcon_support::obs::counter_add(
            &format!("{prefix}.texture.filter_texels"),
            self.filter_texels,
        );
        defcon_support::obs::counter_add(&format!("{prefix}.texture.plan_warps"), self.plan_warps);
        defcon_support::obs::counter_add(&format!("{prefix}.texture.plan_evals"), self.plan_evals);
    }
}

/// A kernel, from the simulator's point of view: a grid of identical thread
/// blocks, each able to describe its own work.
///
/// `Sync` is a supertrait because [`crate::Gpu::launch`] traces disjoint
/// block bands from several worker threads at once; `trace_block` takes
/// `&self`, so kernels are shared, never mutated, across workers.
pub trait BlockTrace: Sync {
    /// Number of thread blocks in the grid.
    fn grid_blocks(&self) -> usize;
    /// Threads per block.
    fn block_threads(&self) -> usize;
    /// Emits block `block`'s instruction stream into the sink.
    fn trace_block(&self, block: usize, sink: &mut TraceSink);
    /// Label used in reports.
    fn label(&self) -> String {
        "kernel".into()
    }
}

/// Per-block pipe occupancies, in *scalar operation* units; converted to
/// cycles by the engine.
#[derive(Clone, Debug, Default)]
pub struct BlockCost {
    /// Scalar FP ops (an FMA contributes 2).
    pub flop_units: u64,
    /// Scalar integer/address ops.
    pub alu_units: u64,
    /// Sectors through the LSU (L1 path).
    pub lsu_sectors: u64,
    /// Texture fetches at fp32 filter precision.
    pub tex_fetches_fp32: u64,
    /// Texture fetches at reduced filter precision.
    pub tex_fetches_fp16: u64,
    /// Sum of exposed memory latencies (cycles) over warp instructions.
    pub latency_cycles: u64,
    /// Warps in the block (for latency-hiding capacity).
    pub warps: usize,
}

/// The event sink handed to kernels.
///
/// Owns the per-SM caches for the current block (L1 and texture cache are
/// flushed between blocks by the engine) and borrows its band's L2 shard —
/// the launch-wide L2 in a serial launch, a per-worker shard in a parallel
/// one (see the engine module docs for the determinism contract).
///
/// # Zero-allocation contract
///
/// The sink owns fixed-capacity [`LaneBuf`] scratch for every warp-level
/// event class (lane addresses, coalesced sectors, texture coordinates,
/// filtered outputs). Kernels that stage their events through the `_into`
/// entry points ([`TraceSink::global_load_into`],
/// [`TraceSink::global_store_into`], [`TraceSink::tex_fetch_warp_into`])
/// perform **zero heap allocations per traced block** — the contract
/// `tests/zero_alloc.rs` pins for all four kernel families. The slice-based
/// entry points are kept as thin wrappers over the same staged path.
pub struct TraceSink<'a> {
    cfg: &'a DeviceConfig,
    l1: &'a mut Cache,
    tex: &'a mut Cache,
    l2: &'a mut Cache,
    /// Counters for the current block.
    pub counters: Counters,
    /// Pipe occupancies for the current block.
    pub cost: BlockCost,
    /// Texture-unit statistics for the current block (obs-only; not part
    /// of the report JSON).
    pub tex_stats: TexStats,
    /// Staged lane byte addresses of the current load/store instruction.
    lane_addrs: LaneBuf<u64>,
    /// Unique coalesced sectors of the current instruction.
    sectors: LaneBuf<u64>,
    /// Staged lane coordinates of the current texture instruction.
    coords: LaneBuf<(f32, f32)>,
    /// Layer-independent fetch plans staged for the current texture warp —
    /// computed once per coordinate set and replayed per layer.
    plans: LaneBuf<FetchPlan>,
    /// Filtered outputs of the current texture instruction (one per lane).
    tex_out: LaneBuf<f32>,
    /// `Some(shift)` when the L1 line size is a power-of-two multiple of
    /// the sector size: `line = sector >> shift` replaces the division on
    /// the per-sector walk.
    l1_sector_shift: Option<u32>,
    /// Same for the texture cache's byte-address → line mapping.
    tex_line_shift: Option<u32>,
}

/// `Some(log2(bytes / unit))` when `bytes` is a power-of-two multiple of
/// `unit` — the shift that replaces `addr * unit / bytes` (or `addr / bytes`
/// for `unit == 1`) on the hot walk.
fn pow2_shift(bytes: u64, unit: u64) -> Option<u32> {
    (bytes % unit == 0 && (bytes / unit).is_power_of_two()).then(|| (bytes / unit).trailing_zeros())
}

impl<'a> TraceSink<'a> {
    /// Builds a sink over the engine's cache state.
    pub fn new(
        cfg: &'a DeviceConfig,
        l1: &'a mut Cache,
        tex: &'a mut Cache,
        l2: &'a mut Cache,
        warps: usize,
    ) -> Self {
        let l1_sector_shift = pow2_shift(l1.line_bytes() as u64, SECTOR_BYTES);
        let tex_line_shift = pow2_shift(tex.line_bytes() as u64, 1);
        TraceSink {
            cfg,
            l1,
            tex,
            l2,
            counters: Counters::default(),
            cost: BlockCost {
                warps,
                ..Default::default()
            },
            tex_stats: TexStats::default(),
            lane_addrs: LaneBuf::new(),
            sectors: LaneBuf::new(),
            coords: LaneBuf::new(),
            plans: LaneBuf::new(),
            tex_out: LaneBuf::new(),
            l1_sector_shift,
            tex_line_shift,
        }
    }

    /// Records `n` scalar fused multiply-adds (2 flops each).
    #[inline]
    pub fn fma(&mut self, n: u64) {
        self.counters.flops += 2 * n;
        self.cost.flop_units += n;
    }

    /// Records `n` scalar non-FMA floating-point ops.
    #[inline]
    pub fn flop(&mut self, n: u64) {
        self.counters.flops += n;
        self.cost.flop_units += n;
    }

    /// Records `n` scalar integer/addressing ops.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.counters.alu_ops += n;
        self.cost.alu_units += n;
    }

    /// One warp-level global **load** instruction over the given lane byte
    /// addresses (4-byte accesses). Coalesces into sectors, walks
    /// L1 → L2 → DRAM, accumulates latency of the slowest sector.
    pub fn global_load(&mut self, lane_addrs: &[u64]) {
        if lane_addrs.is_empty() {
            return;
        }
        let requested = coalesce_into(lane_addrs, 4, &mut self.sectors);
        self.global_load_coalesced(requested);
    }

    /// [`TraceSink::global_load`] fed by an iterator of lane addresses, so
    /// kernels can stream addresses straight from their index math without
    /// collecting a `Vec` first. The iterator may borrow the kernel freely —
    /// it is drained into the sink's scratch before any cache work starts.
    pub fn global_load_into(&mut self, lane_addrs: impl IntoIterator<Item = u64>) {
        self.lane_addrs.fill_from(lane_addrs);
        if self.lane_addrs.is_empty() {
            return;
        }
        let requested = coalesce_into(&self.lane_addrs, 4, &mut self.sectors);
        self.global_load_coalesced(requested);
    }

    /// Reference-path load used as the oracle by the hot-path benchmark:
    /// identical accounting to [`TraceSink::global_load`] but through the
    /// allocating [`coalesce`] (sort + dedup). Counters, cost and cache
    /// state evolve byte-identically on either path.
    pub fn global_load_ref(&mut self, lane_addrs: &[u64]) {
        if lane_addrs.is_empty() {
            return;
        }
        let r = coalesce(lane_addrs, 4);
        self.counters.gld_requests += 1;
        self.counters.gld_transactions += r.transactions();
        self.counters.gld_requested_bytes += r.requested_bytes;
        let mut worst = 0u32;
        for &sector in &r.sectors {
            // Sectors are 32B; the caches track 128B lines.
            let line = sector * SECTOR_BYTES / self.l1.line_bytes() as u64;
            let lat = self.global_line_access(line);
            worst = worst.max(lat);
        }
        self.cost.lsu_sectors += r.transactions();
        self.cost.latency_cycles += worst as u64;
    }

    /// Load path over the coalesced `sectors`: the L1 → L2 → DRAM walk in
    /// ascending sector order (the same order the reference path visits,
    /// which the golden snapshots depend on).
    fn global_load_coalesced(&mut self, requested: u64) {
        let transactions = self.sectors.len() as u64;
        self.counters.gld_requests += 1;
        self.counters.gld_transactions += transactions;
        self.counters.gld_requested_bytes += requested;
        let mut worst = 0u32;
        let line_bytes = self.l1.line_bytes() as u64;
        // Sectors arrive sorted ascending, so sectors sharing a 128B line
        // are adjacent; a repeat of the line just accessed is a guaranteed
        // L1 hit at the MRU front (hit or miss, `access_line` leaves the
        // line there), so it is counted without re-probing.
        let mut prev_line = u64::MAX;
        for i in 0..self.sectors.len() {
            // Sectors are 32B; the caches track 128B lines. Shift instead
            // of divide when the ratio is a power of two (it always is on
            // the shipped geometries).
            let line = match self.l1_sector_shift {
                Some(sh) => self.sectors[i] >> sh,
                None => self.sectors[i] * SECTOR_BYTES / line_bytes,
            };
            let lat = if line == prev_line {
                self.counters.l1_accesses += 1;
                self.counters.l1_hits += 1;
                self.l1.note_mru_hit();
                self.cfg.l1.hit_latency
            } else {
                prev_line = line;
                self.global_line_access(line)
            };
            worst = worst.max(lat);
        }
        self.cost.lsu_sectors += transactions;
        self.cost.latency_cycles += worst as u64;
    }

    /// One warp-level global **store** instruction. Stores are modelled as
    /// write-through to DRAM (no allocate), which matches how NVIDIA L1s
    /// treat global writes.
    pub fn global_store(&mut self, lane_addrs: &[u64]) {
        if lane_addrs.is_empty() {
            return;
        }
        let requested = coalesce_into(lane_addrs, 4, &mut self.sectors);
        self.global_store_coalesced(requested);
    }

    /// [`TraceSink::global_store`] fed by an iterator of lane addresses;
    /// the store-side twin of [`TraceSink::global_load_into`].
    pub fn global_store_into(&mut self, lane_addrs: impl IntoIterator<Item = u64>) {
        self.lane_addrs.fill_from(lane_addrs);
        if self.lane_addrs.is_empty() {
            return;
        }
        let requested = coalesce_into(&self.lane_addrs, 4, &mut self.sectors);
        self.global_store_coalesced(requested);
    }

    /// Reference-path store (allocating coalesce); see
    /// [`TraceSink::global_load_ref`].
    pub fn global_store_ref(&mut self, lane_addrs: &[u64]) {
        if lane_addrs.is_empty() {
            return;
        }
        let r = coalesce(lane_addrs, 4);
        self.counters.gst_requests += 1;
        self.counters.gst_transactions += r.transactions();
        self.counters.gst_requested_bytes += r.requested_bytes;
        self.counters.dram_write_bytes += r.moved_bytes();
        self.cost.lsu_sectors += r.transactions();
    }

    /// Store path over the coalesced `sectors`.
    fn global_store_coalesced(&mut self, requested: u64) {
        let transactions = self.sectors.len() as u64;
        self.counters.gst_requests += 1;
        self.counters.gst_transactions += transactions;
        self.counters.gst_requested_bytes += requested;
        self.counters.dram_write_bytes += transactions * SECTOR_BYTES;
        self.cost.lsu_sectors += transactions;
    }

    fn global_line_access(&mut self, line: u64) -> u32 {
        self.counters.l1_accesses += 1;
        if self.l1.access_line(line) == Access::Hit {
            self.counters.l1_hits += 1;
            return self.cfg.l1.hit_latency;
        }
        self.counters.l2_accesses += 1;
        if self.l2.access_line(line) == Access::Hit {
            self.counters.l2_hits += 1;
            return self.cfg.l2.hit_latency;
        }
        self.counters.dram_read_bytes += SECTOR_BYTES;
        self.cfg.dram_latency
    }

    /// One warp-level texture instruction: every lane fetches a
    /// hardware-filtered sample of `tex` in `layer` at its own fractional
    /// coordinates. Filtered values are *appended* to `out` (one per
    /// coordinate). All cache traffic and filter-pipe occupancy is
    /// accounted here; the warp stalls once on the slowest footprint line,
    /// mirroring how a `TLD` instruction retires. Border handling costs
    /// nothing — that is the point of the texture path.
    pub fn tex_fetch_warp(
        &mut self,
        tex: &LayeredTexture2d,
        layer: usize,
        coords: &[(f32, f32)],
        out: &mut Vec<f32>,
    ) {
        self.coords.fill_from(coords.iter().copied());
        self.tex_fetch_staged(tex, layer);
        out.extend_from_slice(&self.tex_out);
    }

    /// [`TraceSink::tex_fetch_warp`] fed by an iterator of lane coordinates;
    /// returns the filtered values (one per coordinate) as a slice of the
    /// sink's scratch — valid until the next sink call, no allocation.
    pub fn tex_fetch_warp_into(
        &mut self,
        tex: &LayeredTexture2d,
        layer: usize,
        coords: impl IntoIterator<Item = (f32, f32)>,
    ) -> &[f32] {
        self.coords.fill_from(coords);
        self.tex_fetch_staged(tex, layer);
        &self.tex_out
    }

    /// Stages a warp's texture coordinates **without issuing a fetch**:
    /// computes the layer-independent [`FetchPlan`] of every coordinate
    /// (floor, fraction quantization, address-mode resolution) into the
    /// sink's fixed-capacity scratch. Follow with one
    /// [`TraceSink::tex_fetch_staged_warp`] per layer — the plans are valid
    /// until the next staging call. This is how `kernels::fused` exploits
    /// the deform-group structure: all `C_in / G` channels of a group
    /// sample at the same coordinates, so the planning work is paid once
    /// per (group, tap) instead of once per channel.
    pub fn tex_stage_warp(
        &mut self,
        tex: &LayeredTexture2d,
        coords: impl IntoIterator<Item = (f32, f32)>,
    ) {
        self.coords.fill_from(coords);
        self.plans.clear();
        for i in 0..self.coords.len() {
            let (y, x) = self.coords[i];
            self.plans.push(tex.plan_fetch(y, x));
        }
        self.tex_stats.plan_warps += 1;
    }

    /// One warp-level texture instruction replayed from the staged plans
    /// against `layer`: bit-identical values, cache traffic, counters and
    /// latency to a fresh [`TraceSink::tex_fetch_warp_into`] at the staged
    /// coordinates. Returns the filtered values (one per staged
    /// coordinate) as a slice of the sink's scratch.
    pub fn tex_fetch_staged_warp(&mut self, tex: &LayeredTexture2d, layer: usize) -> &[f32] {
        self.tex_replay_plans(tex, layer);
        &self.tex_out
    }

    /// Texture path over the staged `coords`: plan each coordinate, then
    /// replay the plans against `layer`.
    fn tex_fetch_staged(&mut self, tex: &LayeredTexture2d, layer: usize) {
        debug_assert!(self.coords.len() <= self.cfg.warp_size);
        self.plans.clear();
        for i in 0..self.coords.len() {
            let (y, x) = self.coords[i];
            self.plans.push(tex.plan_fetch(y, x));
        }
        self.tex_stats.plan_warps += 1;
        self.tex_replay_plans(tex, layer);
    }

    /// The texture instruction proper: walks the staged plans' footprints
    /// through the texture cache for one layer; filtered values land in
    /// `tex_out`.
    fn tex_replay_plans(&mut self, tex: &LayeredTexture2d, layer: usize) {
        self.tex_out.clear();
        if self.plans.is_empty() {
            return;
        }
        self.counters.tex_requests += 1;
        match tex.filter_mode {
            FilterMode::Linear { frac_bits } if frac_bits <= 10 => {
                self.cost.tex_fetches_fp16 += self.plans.len() as u64
            }
            _ => self.cost.tex_fetches_fp32 += self.plans.len() as u64,
        }
        self.tex_stats.plan_evals += 1;
        self.tex_stats.fetch_lanes += self.plans.len() as u64;
        let mut worst = 0u32;
        let tex_line_bytes = self.tex.line_bytes() as u64;
        // Adjacent lanes' bilinear footprints overlap heavily; when a
        // lane's first line equals the line the previous probe ended on,
        // it is a guaranteed texture-cache hit at the MRU front and is
        // counted without re-probing (same shortcut as the global walk).
        let mut prev_line = u64::MAX;
        for i in 0..self.plans.len() {
            let f = tex.eval_plan(&self.plans[i], layer);
            self.tex_out.push(f.value);
            self.tex_stats.filter_texels += f.len as u64;
            // Unique lines in this lane's footprint go through the texture
            // cache (the quad almost always stays within 1–2 block-linear
            // lines).
            let mut lines = [u64::MAX; 4];
            let mut n_lines = 0usize;
            for &a in &f.addresses[..f.len as usize] {
                let line = match self.tex_line_shift {
                    Some(sh) => a >> sh,
                    None => a / tex_line_bytes,
                };
                if !lines[..n_lines].contains(&line) {
                    lines[n_lines] = line;
                    n_lines += 1;
                }
            }
            for &line in &lines[..n_lines] {
                self.counters.tex_line_accesses += 1;
                let lat = if line == prev_line {
                    self.counters.tex_hits += 1;
                    self.tex.note_mru_hit();
                    self.cfg.tex_hit_latency
                } else {
                    prev_line = line;
                    if self.tex.access_line(line) == Access::Hit {
                        self.counters.tex_hits += 1;
                        self.cfg.tex_hit_latency
                    } else {
                        self.counters.l2_accesses += 1;
                        if self.l2.access_line(line) == Access::Hit {
                            self.counters.l2_hits += 1;
                            self.cfg.l2.hit_latency
                        } else {
                            self.counters.dram_read_bytes += tex_line_bytes;
                            self.cfg.dram_latency
                        }
                    }
                };
                worst = worst.max(lat);
            }
        }
        self.cost.latency_cycles += worst as u64;
    }

    /// Single-lane convenience wrapper over the staged texture path. Unlike
    /// the pre-optimization version, it does **not** allocate a per-fetch
    /// `Vec` — the value comes straight out of the sink's scratch.
    pub fn tex_fetch(&mut self, tex: &LayeredTexture2d, layer: usize, y: f32, x: f32) -> f32 {
        self.coords.clear();
        self.coords.push((y, x));
        self.tex_fetch_staged(tex, layer);
        self.tex_out[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    fn harness() -> (DeviceConfig, Cache, Cache, Cache) {
        let cfg = DeviceConfig::xavier_agx();
        let l1 = Cache::new(cfg.l1);
        let tex = Cache::new(cfg.tex_cache);
        let l2 = Cache::new(cfg.l2);
        (cfg, l1, tex, l2)
    }

    #[test]
    fn coalesced_load_counts_four_sectors() {
        let (cfg, mut l1, mut tex, mut l2) = harness();
        let mut sink = TraceSink::new(&cfg, &mut l1, &mut tex, &mut l2, 8);
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        sink.global_load(&addrs);
        assert_eq!(sink.counters.gld_requests, 1);
        assert_eq!(sink.counters.gld_transactions, 4);
        assert!((sink.counters.gld_efficiency() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scattered_load_hurts_efficiency_and_latency() {
        let (cfg, mut l1, mut tex, mut l2) = harness();
        let mut sink = TraceSink::new(&cfg, &mut l1, &mut tex, &mut l2, 8);
        let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
        sink.global_load(&addrs);
        assert_eq!(sink.counters.gld_transactions, 32);
        assert!(sink.counters.gld_efficiency() < 13.0);
        assert!(sink.cost.latency_cycles >= cfg.dram_latency as u64);
    }

    #[test]
    fn repeated_load_hits_l1_and_is_fast() {
        let (cfg, mut l1, mut tex, mut l2) = harness();
        let mut sink = TraceSink::new(&cfg, &mut l1, &mut tex, &mut l2, 8);
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        sink.global_load(&addrs);
        let lat_cold = sink.cost.latency_cycles;
        sink.global_load(&addrs);
        let lat_warm = sink.cost.latency_cycles - lat_cold;
        assert!(lat_warm < lat_cold, "warm {lat_warm} vs cold {lat_cold}");
        assert!(sink.counters.l1_hits > 0);
    }

    #[test]
    fn tex_fetch_returns_value_and_counts_requests() {
        let (cfg, mut l1, mut texc, mut l2) = harness();
        let data: Vec<f32> = (0..64).map(|v| v as f32).collect();
        let t = LayeredTexture2d::new(data, 1, 8, 8, 1 << 30, 2048, 32768).unwrap();
        let mut sink = TraceSink::new(&cfg, &mut l1, &mut texc, &mut l2, 8);
        let v = sink.tex_fetch(&t, 0, 3.0, 4.0);
        assert_eq!(v, 28.0);
        assert_eq!(sink.counters.tex_requests, 1);
        assert_eq!(sink.cost.tex_fetches_fp32, 1);
        assert_eq!(
            sink.counters.gld_requests, 0,
            "texture path must not touch global-load counters"
        );
    }

    #[test]
    fn reduced_precision_fetch_uses_fp16_pipe() {
        let (cfg, mut l1, mut texc, mut l2) = harness();
        let data = vec![1.0f32; 64];
        let mut t = LayeredTexture2d::new(data, 1, 8, 8, 1 << 30, 2048, 32768).unwrap();
        t.filter_mode = FilterMode::Linear { frac_bits: 8 };
        let mut sink = TraceSink::new(&cfg, &mut l1, &mut texc, &mut l2, 8);
        sink.tex_fetch(&t, 0, 2.5, 2.5);
        assert_eq!(sink.cost.tex_fetches_fp16, 1);
        assert_eq!(sink.cost.tex_fetches_fp32, 0);
    }

    #[test]
    fn tex_locality_hits_texture_cache() {
        let (cfg, mut l1, mut texc, mut l2) = harness();
        let data = vec![0.5f32; 64 * 64];
        let t = LayeredTexture2d::new(data, 1, 64, 64, 1 << 30, 2048, 32768).unwrap();
        let mut sink = TraceSink::new(&cfg, &mut l1, &mut texc, &mut l2, 8);
        // A tight 2-D walk: overwhelmingly texture-cache hits after warmup.
        for y in 0..8 {
            for x in 0..8 {
                sink.tex_fetch(&t, 0, y as f32 + 0.3, x as f32 + 0.3);
            }
        }
        assert!(
            sink.counters.tex_hit_rate() > 0.8,
            "rate {}",
            sink.counters.tex_hit_rate()
        );
    }

    #[test]
    fn fma_counts_two_flops() {
        let (cfg, mut l1, mut tex, mut l2) = harness();
        let mut sink = TraceSink::new(&cfg, &mut l1, &mut tex, &mut l2, 1);
        sink.fma(10);
        sink.flop(5);
        assert_eq!(sink.counters.flops, 25);
        assert_eq!(sink.cost.flop_units, 15);
    }
}
