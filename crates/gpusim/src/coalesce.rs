//! The memory coalescing unit.
//!
//! A warp's 32 lane addresses are merged into the minimal set of 32-byte
//! *sectors* (the granularity NVIDIA's LSU requests from L1/L2 since
//! Pascal). `gld_transactions` counts sectors; `gld_efficiency` is the ratio
//! of bytes the program asked for to bytes the memory system had to move —
//! exactly the two derived metrics Fig. 10 of the paper plots.

use defcon_support::lanebuf::LaneBuf;

/// Sector size in bytes (NVIDIA global-memory transaction granularity).
pub const SECTOR_BYTES: u64 = 32;

/// Result of coalescing one warp-wide memory instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoalesceResult {
    /// Unique 32-byte sector addresses (sector index, not byte address),
    /// sorted ascending.
    pub sectors: Vec<u64>,
    /// Bytes actually requested by active lanes.
    pub requested_bytes: u64,
}

impl CoalesceResult {
    /// Number of memory transactions this instruction generated.
    pub fn transactions(&self) -> u64 {
        self.sectors.len() as u64
    }

    /// Bytes moved by the memory system.
    pub fn moved_bytes(&self) -> u64 {
        self.transactions() * SECTOR_BYTES
    }

    /// `requested / moved`, the per-instruction load efficiency.
    pub fn efficiency(&self) -> f64 {
        if self.sectors.is_empty() {
            1.0
        } else {
            self.requested_bytes as f64 / self.moved_bytes() as f64
        }
    }
}

/// Coalesces a warp's lane addresses (each lane reads `access_bytes`,
/// typically 4 for `f32`). Inactive lanes are simply absent from `addrs`.
///
/// This is the **reference oracle**: it allocates, sorts and dedups, and is
/// deliberately kept simple. The engine's hot path uses [`coalesce_into`],
/// which is proven bit-equal to this function by a seeded property test
/// (`tests/hot_path_equivalence.rs`).
pub fn coalesce(addrs: &[u64], access_bytes: u64) -> CoalesceResult {
    // Every access can straddle one sector boundary, so the worst case is
    // two sectors per lane — size for that so the push loop never reallocs.
    let mut sectors: Vec<u64> = Vec::with_capacity(2 * addrs.len());
    for &a in addrs {
        // An access may straddle a sector boundary; cover all touched sectors.
        let first = a / SECTOR_BYTES;
        let last = (a + access_bytes - 1) / SECTOR_BYTES;
        for s in first..=last {
            sectors.push(s);
        }
    }
    sectors.sort_unstable();
    sectors.dedup();
    CoalesceResult {
        sectors,
        requested_bytes: addrs.len() as u64 * access_bytes,
    }
}

/// Sector span (in 64-sector words) the bitmap fast path of
/// [`coalesce_into`] covers: 64 words = 4096 sectors = 128 KiB of address
/// range, far beyond what one warp instruction touches in practice. Must
/// stay 64 so one `u64` can serve as the touched-word mask.
const SPAN_WORDS: usize = 64;

/// Allocation-free coalescer: writes the unique sector addresses of a warp
/// instruction into `sectors` (cleared first), **sorted ascending** — the
/// same order [`coalesce`] produces, so the cache walk that follows visits
/// lines identically. Returns the requested byte count.
///
/// Instead of the oracle's sort + dedup (a comparison sort is the dominant
/// cost when deformed sampling scatters the lanes), this marks touched
/// sectors in a small stack bitmap and emits the set bits in ascending
/// order — O(lanes), no sort. The bitmap window is anchored on the *first*
/// lane's sector (±2048 sectors, i.e. ±64 KiB), which saves the min/max
/// pre-pass an exact-span window would need; a second `u64` tracks which
/// bitmap words were touched, so the emit scan visits only those. Warps
/// reaching beyond the window (essentially only adversarial address
/// patterns) fall back to in-place sort + dedup. Either way the output can
/// never overflow the buffer: at most 32 lanes × 2 straddled sectors = 64
/// = `LANE_BUF_CAP` unique entries.
pub fn coalesce_into(addrs: &[u64], access_bytes: u64, sectors: &mut LaneBuf<u64>) -> u64 {
    sectors.clear();
    if addrs.is_empty() {
        return 0;
    }
    let span = (SPAN_WORDS * 64) as u64;
    let base = (addrs[0] / SECTOR_BYTES).saturating_sub(span / 2);
    let mut bits = [0u64; SPAN_WORDS];
    let mut dirty = 0u64;
    if access_bytes <= SECTOR_BYTES {
        // A lane touches at most two sectors (`first` and `last`), so both
        // are marked unconditionally — idempotent when they coincide, and
        // branch-free where a per-sector loop would mispredict on the
        // straddle pattern.
        for &a in addrs {
            let first = (a / SECTOR_BYTES).wrapping_sub(base);
            let last = ((a + access_bytes - 1) / SECTOR_BYTES).wrapping_sub(base);
            // A sector outside the window wraps to a huge offset; both
            // offsets fit in 12 bits when in-window, so one OR checks both.
            if (first | last) >= span {
                return coalesce_into_wide(addrs, access_bytes, sectors);
            }
            bits[(first >> 6) as usize] |= 1u64 << (first & 63);
            dirty |= 1u64 << (first >> 6);
            bits[(last >> 6) as usize] |= 1u64 << (last & 63);
            dirty |= 1u64 << (last >> 6);
        }
    } else {
        for &a in addrs {
            let first = (a / SECTOR_BYTES).wrapping_sub(base);
            let last = ((a + access_bytes - 1) / SECTOR_BYTES).wrapping_sub(base);
            if (first | last) >= span {
                return coalesce_into_wide(addrs, access_bytes, sectors);
            }
            for s in first..=last {
                bits[(s >> 6) as usize] |= 1u64 << (s & 63);
                dirty |= 1u64 << (s >> 6);
            }
        }
    }
    while dirty != 0 {
        let w = dirty.trailing_zeros() as u64;
        dirty &= dirty - 1;
        let mut word = bits[w as usize];
        while word != 0 {
            let b = word.trailing_zeros() as u64;
            sectors.push(base + w * 64 + b);
            word &= word - 1;
        }
    }
    addrs.len() as u64 * access_bytes
}

/// Out-of-window tail of [`coalesce_into`]: in-place sort + dedup, no
/// allocation. Correctness backstop only — real kernels never take it.
fn coalesce_into_wide(addrs: &[u64], access_bytes: u64, sectors: &mut LaneBuf<u64>) -> u64 {
    sectors.clear();
    let mut prev = u64::MAX;
    for &a in addrs {
        let first = a / SECTOR_BYTES;
        let last = (a + access_bytes - 1) / SECTOR_BYTES;
        for s in first..=last {
            if s != prev {
                sectors.push(s);
                prev = s;
            }
        }
    }
    let buf = sectors.as_mut_slice();
    buf.sort_unstable();
    let mut keep = 0;
    for i in 0..buf.len() {
        if i == 0 || buf[i] != buf[keep - 1] {
            buf[keep] = buf[i];
            keep += 1;
        }
    }
    sectors.truncate(keep);
    addrs.len() as u64 * access_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_warp_is_four_sectors() {
        // 32 lanes * 4B contiguous = 128B = 4 sectors; efficiency 1.0.
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        let r = coalesce(&addrs, 4);
        assert_eq!(r.transactions(), 4);
        assert!((r.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strided_access_wastes_bandwidth() {
        // Stride-32B: every lane lands in its own sector.
        let addrs: Vec<u64> = (0..32).map(|i| i * 32).collect();
        let r = coalesce(&addrs, 4);
        assert_eq!(r.transactions(), 32);
        assert!((r.efficiency() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn broadcast_access_is_one_sector() {
        let addrs = vec![100u64; 32];
        let r = coalesce(&addrs, 4);
        assert_eq!(r.transactions(), 1);
    }

    #[test]
    fn straddling_access_touches_two_sectors() {
        let r = coalesce(&[30], 4); // bytes 30..34 cross the 32B boundary
        assert_eq!(r.transactions(), 2);
    }

    #[test]
    fn partial_warp_counts_only_active_lanes() {
        let addrs: Vec<u64> = (0..8).map(|i| i * 4).collect();
        let r = coalesce(&addrs, 4);
        assert_eq!(r.requested_bytes, 32);
        assert_eq!(r.transactions(), 1);
        assert!((r.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_warp_is_free() {
        let r = coalesce(&[], 4);
        assert_eq!(r.transactions(), 0);
        assert_eq!(r.efficiency(), 1.0);
    }

    /// The in-place coalescer agrees with the oracle on the canonical warp
    /// shapes (randomized agreement lives in `tests/hot_path_equivalence.rs`).
    #[test]
    fn coalesce_into_matches_reference_on_canonical_warps() {
        let cases: Vec<Vec<u64>> = vec![
            (0..32).map(|i| i * 4).collect(),        // fully coalesced
            (0..32).map(|i| i * 32).collect(),       // strided
            vec![100; 32],                           // broadcast
            vec![30],                                // straddling
            (0..8).map(|i| i * 4).collect(),         // partial warp
            vec![],                                  // empty
            (0..32).rev().map(|i| i * 36).collect(), // descending, straddling
        ];
        let mut buf = LaneBuf::new();
        for addrs in cases {
            let r = coalesce(&addrs, 4);
            let requested = coalesce_into(&addrs, 4, &mut buf);
            assert_eq!(buf.as_slice(), r.sectors.as_slice(), "addrs {addrs:?}");
            assert_eq!(requested, r.requested_bytes);
        }
    }

    /// Worst case: every lane straddles a boundary and all sectors are
    /// distinct — exactly 64 entries, the `LaneBuf` capacity.
    #[test]
    fn coalesce_into_worst_case_fills_capacity_exactly() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 64 + 30).collect();
        let mut buf = LaneBuf::new();
        coalesce_into(&addrs, 4, &mut buf);
        assert_eq!(buf.len(), 64);
        assert_eq!(buf.as_slice(), coalesce(&addrs, 4).sectors.as_slice());
    }
}
