//! The memory coalescing unit.
//!
//! A warp's 32 lane addresses are merged into the minimal set of 32-byte
//! *sectors* (the granularity NVIDIA's LSU requests from L1/L2 since
//! Pascal). `gld_transactions` counts sectors; `gld_efficiency` is the ratio
//! of bytes the program asked for to bytes the memory system had to move —
//! exactly the two derived metrics Fig. 10 of the paper plots.

/// Sector size in bytes (NVIDIA global-memory transaction granularity).
pub const SECTOR_BYTES: u64 = 32;

/// Result of coalescing one warp-wide memory instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoalesceResult {
    /// Unique 32-byte sector addresses (sector index, not byte address),
    /// sorted ascending.
    pub sectors: Vec<u64>,
    /// Bytes actually requested by active lanes.
    pub requested_bytes: u64,
}

impl CoalesceResult {
    /// Number of memory transactions this instruction generated.
    pub fn transactions(&self) -> u64 {
        self.sectors.len() as u64
    }

    /// Bytes moved by the memory system.
    pub fn moved_bytes(&self) -> u64 {
        self.transactions() * SECTOR_BYTES
    }

    /// `requested / moved`, the per-instruction load efficiency.
    pub fn efficiency(&self) -> f64 {
        if self.sectors.is_empty() {
            1.0
        } else {
            self.requested_bytes as f64 / self.moved_bytes() as f64
        }
    }
}

/// Coalesces a warp's lane addresses (each lane reads `access_bytes`,
/// typically 4 for `f32`). Inactive lanes are simply absent from `addrs`.
pub fn coalesce(addrs: &[u64], access_bytes: u64) -> CoalesceResult {
    let mut sectors: Vec<u64> = Vec::with_capacity(addrs.len());
    for &a in addrs {
        // An access may straddle a sector boundary; cover all touched sectors.
        let first = a / SECTOR_BYTES;
        let last = (a + access_bytes - 1) / SECTOR_BYTES;
        for s in first..=last {
            sectors.push(s);
        }
    }
    sectors.sort_unstable();
    sectors.dedup();
    CoalesceResult {
        sectors,
        requested_bytes: addrs.len() as u64 * access_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_warp_is_four_sectors() {
        // 32 lanes * 4B contiguous = 128B = 4 sectors; efficiency 1.0.
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        let r = coalesce(&addrs, 4);
        assert_eq!(r.transactions(), 4);
        assert!((r.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strided_access_wastes_bandwidth() {
        // Stride-32B: every lane lands in its own sector.
        let addrs: Vec<u64> = (0..32).map(|i| i * 32).collect();
        let r = coalesce(&addrs, 4);
        assert_eq!(r.transactions(), 32);
        assert!((r.efficiency() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn broadcast_access_is_one_sector() {
        let addrs = vec![100u64; 32];
        let r = coalesce(&addrs, 4);
        assert_eq!(r.transactions(), 1);
    }

    #[test]
    fn straddling_access_touches_two_sectors() {
        let r = coalesce(&[30], 4); // bytes 30..34 cross the 32B boundary
        assert_eq!(r.transactions(), 2);
    }

    #[test]
    fn partial_warp_counts_only_active_lanes() {
        let addrs: Vec<u64> = (0..8).map(|i| i * 4).collect();
        let r = coalesce(&addrs, 4);
        assert_eq!(r.requested_bytes, 32);
        assert_eq!(r.transactions(), 1);
        assert!((r.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_warp_is_free() {
        let r = coalesce(&[], 4);
        assert_eq!(r.transactions(), 0);
        assert_eq!(r.efficiency(), 1.0);
    }
}
