//! Autotune the texture-kernel thread-block tile for a layer (paper Fig. 8
//! workflow), comparing Bayesian optimization against random search.
//!
//! ```sh
//! cargo run --release --example tile_autotune
//! ```

use defcon::core::autotune::{Autotuner, Strategy};
use defcon::prelude::*;

fn main() {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(256, 256, 35, 35);
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 11);

    let time = |tile: TileConfig| -> f64 {
        DeformConvOp {
            tile,
            method: SamplingMethod::Tex2d,
            offset_predictor: OffsetPredictorKind::Lightweight,
            offset_transform: OffsetTransform::Bounded(7.0),
            ..DeformConvOp::baseline(shape)
        }
        .simulate_total(&gpu, &x, &offsets)
        .0
    };

    let space = TileConfig::search_space();
    println!(
        "tile space: {} candidates; budget: 8 evaluations each\n",
        space.len()
    );

    let bo = Autotuner::bayesian(8, 1).run(&space, time);
    println!("Bayesian : best {} at {:.3} ms", bo.best, bo.best_value);
    for (t, v) in &bo.evaluations {
        println!("  tried {t:>6} -> {v:.3} ms");
    }

    let rnd = Autotuner {
        strategy: Strategy::Random,
        budget: 8,
        seed: 1,
    }
    .run(&space, time);
    println!("\nRandom   : best {} at {:.3} ms", rnd.best, rnd.best_value);

    let truth = Autotuner {
        strategy: Strategy::Exhaustive,
        budget: 0,
        seed: 0,
    }
    .run(&space, time);
    println!(
        "Exhaustive ground truth: {} at {:.3} ms",
        truth.best, truth.best_value
    );
}
