//! Quickstart: run one deformable convolution three ways and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Shows the core DEFCON result at the single-operator level: the
//! texture-hardware kernels compute the same values as the PyTorch-style
//! baseline (tex2D exactly; tex2D++ within reduced-filter-precision error)
//! while the simulated Jetson AGX Xavier runs them substantially faster.

use defcon::prelude::*;

fn main() {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let shape = DeformLayerShape::same3x3(128, 128, 69, 69);
    println!(
        "layer: c_in={} c_out={} {}x{} (one of the paper's Table II rows)",
        shape.c_in, shape.c_out, shape.h, shape.w
    );

    // Synthetic activations and a learned-offset field within ±4 px.
    let (x, offsets) = synthetic_inputs(&shape, 4.0, 42);
    let weight = Tensor::randn(&[shape.c_out, shape.c_in, 3, 3], 0.0, 0.05, 43);

    let baseline = DeformConvOp::baseline(shape);
    let tex2d = DeformConvOp {
        method: SamplingMethod::Tex2d,
        ..baseline.clone()
    };
    let tex2dpp = DeformConvOp {
        method: SamplingMethod::Tex2dPlusPlus,
        ..baseline.clone()
    };

    // 1. Numerics: every implementation computes the same convolution.
    let y_base = baseline.execute(&x, &offsets, &weight, &gpu);
    let y_tex = tex2d.execute(&x, &offsets, &weight, &gpu);
    let y_pp = tex2dpp.execute(&x, &offsets, &weight, &gpu);
    let max_err = |a: &Tensor, b: &Tensor| {
        a.data()
            .iter()
            .zip(b.data().iter())
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f32, f32::max)
    };
    println!(
        "numeric check: tex2D max |err| = {:.2e} (exact)",
        max_err(&y_base, &y_tex)
    );
    println!(
        "               tex2D++ max |err| = {:.2e} (reduced filter precision)",
        max_err(&y_base, &y_pp)
    );

    // 2. Timing on the simulated Xavier.
    let t_base = baseline.simulate_total(&gpu, &x, &offsets).0;
    let t_tex = tex2d.simulate_total(&gpu, &x, &offsets).0;
    let t_pp = tex2dpp.simulate_total(&gpu, &x, &offsets).0;
    println!("\nsimulated {}:", gpu.config().name);
    println!("  PyTorch baseline : {t_base:.2} ms");
    println!(
        "  tex2D            : {t_tex:.2} ms  ({:.2}x)",
        t_base / t_tex
    );
    println!("  tex2D++          : {t_pp:.2} ms  ({:.2}x)", t_base / t_pp);

    // 3. The lightweight offset predictor on top (paper Eq. 9).
    let light = DeformConvOp {
        method: SamplingMethod::Tex2dPlusPlus,
        offset_predictor: OffsetPredictorKind::Lightweight,
        ..baseline.clone()
    };
    let t_light = light.simulate_total(&gpu, &x, &offsets).0;
    println!(
        "  + lightweight    : {t_light:.2} ms  ({:.2}x)",
        t_base / t_light
    );
}
