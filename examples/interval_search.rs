//! Run the gradient-based interval search (paper Algorithm 1) on a
//! searchable detector supernet and report the discovered DCN placement.
//!
//! ```sh
//! cargo run --release --example interval_search
//! ```
//!
//! Set `DEFCON_FAST=1` for a quick smoke run.

use defcon::core::lut::LatencyLut;
use defcon::models::trainer::{prepare, DetectorSuperNet};
use defcon::prelude::*;

fn main() {
    let fast = defcon_support::env::or_die(defcon_support::env::flag(defcon_support::env::FAST));
    let dataset = DeformedShapesConfig {
        deformation: 1.0,
        ..Default::default()
    };

    // 1. Build the dual-path supernet: every backbone 3×3 is searchable.
    let mut store = ParamStore::new();
    let backbone = BackboneConfig::mini(48, BackboneConfig::uniform_slots(5, SlotKind::Searchable));
    let data = prepare(&dataset, if fast { 32 } else { 160 }, 1);
    let mut net = DetectorSuperNet::new(&mut store, backbone, data, 8);

    // 2. Collect the on-device latency LUT on the simulated Xavier for the
    //    operator we intend to deploy (tex2D++ + lightweight offsets).
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let keys = net.detector.backbone.all_latency_keys();
    let lut = LatencyLut::build(
        &gpu,
        &keys,
        SamplingMethod::Tex2dPlusPlus,
        OffsetPredictorKind::Lightweight,
    );
    println!(
        "latency LUT ({} keys, device {}):",
        lut.len(),
        gpu.config().name
    );
    for k in &keys {
        println!("  {k:?} -> DCN overhead {:.4} ms", lut.dcn_overhead_ms(k));
    }

    // 3. Run Algorithm 1 with a latency budget.
    let cfg = SearchConfig {
        search_epochs: if fast { 2 } else { 6 },
        finetune_epochs: if fast { 1 } else { 4 },
        iters_per_epoch: if fast { 4 } else { 20 },
        beta: 0.5,
        target_latency_ms: 0.05,
        lr: 0.02,
        ..Default::default()
    };
    let outcome = IntervalSearch::new(cfg, lut).run(&mut net, &mut store);

    println!("\nsearched layout : {}", net.detector.backbone.layout());
    println!("#DCN            : {}", outcome.num_dcn());
    println!(
        "DCN overhead    : {:.4} ms (target 0.05 ms)",
        outcome.dcn_overhead_ms
    );
    println!("loss trajectory : {:?}", outcome.loss_history);
}
