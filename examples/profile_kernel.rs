//! Profile a custom kernel on the GPU model — the `nvprof`-style workflow
//! a downstream user follows to reason about their own access patterns.
//!
//! ```sh
//! cargo run --release --example profile_kernel
//! ```
//!
//! Implements a toy "gather" kernel two ways — scattered global loads vs.
//! texture fetches — and prints the counters the simulator produces
//! (the same quantities the paper's Fig. 10 plots).

use defcon::gpusim::trace::{BlockTrace, TraceSink};
use defcon::gpusim::LayeredTexture2d;
use defcon::prelude::*;

/// A gather over a 256×256 image: each thread reads a pseudo-random
/// fractional position, either via 4 global loads + software interpolation
/// or via one texture fetch.
struct GatherKernel {
    tex: Option<LayeredTexture2d>,
    blocks: usize,
}

impl GatherKernel {
    fn position(block: usize, warp: usize, lane: usize, i: usize) -> (f32, f32) {
        let h = (block * 131 + warp * 37 + lane * 17 + i * 7) % (254 * 254);
        ((h / 254) as f32 + 0.4, (h % 254) as f32 + 0.6)
    }
}

impl BlockTrace for GatherKernel {
    fn grid_blocks(&self) -> usize {
        self.blocks
    }
    fn block_threads(&self) -> usize {
        256
    }
    fn label(&self) -> String {
        if self.tex.is_some() {
            "gather_tex"
        } else {
            "gather_sw"
        }
        .into()
    }
    fn trace_block(&self, block: usize, sink: &mut TraceSink) {
        let mut out = Vec::with_capacity(32);
        for warp in 0..8 {
            for i in 0..16 {
                match &self.tex {
                    Some(tex) => {
                        let coords: Vec<(f32, f32)> = (0..32)
                            .map(|lane| Self::position(block, warp, lane, i))
                            .collect();
                        out.clear();
                        sink.tex_fetch_warp(tex, 0, &coords, &mut out);
                    }
                    None => {
                        for (oy, ox) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
                            let addrs: Vec<u64> = (0..32)
                                .map(|lane| {
                                    let (y, x) = Self::position(block, warp, lane, i);
                                    ((y as u64 + oy) * 256 + x as u64 + ox) * 4
                                })
                                .collect();
                            sink.global_load(&addrs);
                        }
                        sink.flop(8 * 32);
                        sink.alu(6 * 32);
                    }
                }
                sink.fma(32);
            }
        }
    }
}

fn main() {
    let gpu = Gpu::new(DeviceConfig::xavier_agx());
    let data = vec![0.5f32; 256 * 256];
    for use_tex in [false, true] {
        let tex = use_tex.then(|| {
            LayeredTexture2d::new(data.clone(), 1, 256, 256, 1 << 32, 2048, 32768).unwrap()
        });
        let k = GatherKernel { tex, blocks: 128 };
        let r = gpu.launch(&k);
        println!("== {} ==", r.kernel);
        println!("  time               : {:.3} ms", r.time_ms);
        println!("  MFLOP              : {:.2}", r.counters.mflop());
        println!("  gld requests       : {}", r.counters.gld_requests);
        println!(
            "  gld transactions/rq: {:.2}",
            r.counters.gld_transactions_per_request()
        );
        println!(
            "  gld efficiency     : {:.1} %",
            r.counters.gld_efficiency()
        );
        println!("  tex requests       : {}", r.counters.tex_requests);
        println!("  tex hit rate       : {:.2}", r.counters.tex_hit_rate());
        println!(
            "  DRAM read          : {} KB\n",
            r.counters.dram_read_bytes / 1024
        );
    }
}
