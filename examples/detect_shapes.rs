//! Train the YOLACT-style detector on the synthetic deformed-shapes dataset
//! and visualize one prediction as ASCII art.
//!
//! ```sh
//! cargo run --release --example detect_shapes
//! ```
//!
//! (Training runs on one CPU core; a couple of minutes with the default
//! budget. Set `DEFCON_FAST=1` for a ~20 s smoke run.)

use defcon::models::detector::decode_detections;
use defcon::models::trainer::{evaluate_detector, prepare, train_detector};
use defcon::prelude::*;

fn main() {
    let fast = defcon_support::env::or_die(defcon_support::env::flag(defcon_support::env::FAST));
    let dataset = DeformedShapesConfig {
        deformation: 1.0,
        ..Default::default()
    };
    let cfg = TrainConfig {
        epochs: if fast { 2 } else { 10 },
        batch_size: 8,
        lr: 0.02,
        train_size: if fast { 32 } else { 240 },
        val_size: 48,
        dataset,
        seed: 7,
    };

    let mut store = ParamStore::new();
    let backbone = BackboneConfig::mini(48, BackboneConfig::interval_slots(5, 3));
    let mut det = YolactLite::new(&mut store, backbone);
    println!(
        "backbone layout: {} ({} parameters)",
        det.backbone.layout(),
        store.num_scalars()
    );

    let history = train_detector(&mut det, &mut store, &cfg);
    println!("per-epoch loss: {history:?}");

    let val = prepare(&cfg.dataset, cfg.val_size, 0xFACE).samples;
    let map = evaluate_detector(&mut det, &store, &val, 0.05);
    println!(
        "validation: box mAP {:.2}, mask mAP {:.2}, mask AP50 {:.2}\n",
        map.box_map, map.mask_map, map.mask_ap50
    );

    // Visualize the strongest detection on the first validation image.
    det.set_training(false);
    let sample = &val[0];
    let mut tape = Tape::new();
    let x = tape.input(sample.image.clone());
    let out = det.forward(&mut tape, &store, x);
    let dets = decode_detections(
        tape.value(out.cls),
        tape.value(out.boxes),
        tape.value(out.coeffs),
        tape.value(out.protos),
        0,
        48,
        0.05,
        0.5,
    );
    println!(
        "ground truth: {:?}",
        sample
            .objects
            .iter()
            .map(|o| (o.class, o.bbox))
            .collect::<Vec<_>>()
    );
    if let Some(d) = dets.first() {
        println!(
            "top detection: class {} score {:.2} bbox {:?}",
            d.class, d.score, d.bbox
        );
        println!("\nimage ('#' = object pixel) vs predicted mask ('*'):");
        for y in 0..48 {
            let mut row = String::with_capacity(100);
            for xx in 0..48 {
                row.push(if sample.image.at4(0, 0, y, xx) > 0.45 {
                    '#'
                } else {
                    '.'
                });
            }
            row.push_str("   ");
            for xx in 0..48 {
                row.push(if d.mask[y * 48 + xx] { '*' } else { '.' });
            }
            println!("{row}");
        }
    } else {
        println!("no detections above threshold (increase the training budget)");
    }
}
