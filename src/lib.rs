//! # defcon
//!
//! A from-scratch Rust reproduction of **DEFCON: Deformable Convolutions
//! Leveraging Interval Search and GPU Texture Hardware** (IPDPS 2024).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`tensor`] — NCHW tensors and the CPU reference kernels (including the
//!   deformable-convolution reference with full gradients);
//! * [`nn`] — the autograd tape, NN modules (trainable deformable conv,
//!   lightweight offset predictor, dual-path Gumbel-Softmax layers), SGD;
//! * [`gpusim`] — the warp-level GPU timing simulator with layered-texture
//!   hardware (Jetson AGX Xavier and RTX 2080 Ti presets);
//! * [`kernels`] — the three deformable kernels the paper compares
//!   (PyTorch-style software bilinear, `tex2D`, `tex2D++`), each with
//!   numeric and timing interpretations, plus the `Backend` trait the
//!   execution substrates plug into;
//! * [`accel`] — the tiled dataflow accelerator backend: explicit
//!   on-chip buffers, a double-buffered tile scheduler, and bounded-
//!   offset halo reuse, byte-identical to gpusim numerically;
//! * [`core`] — DEFCON proper: interval search, latency LUT, bounded
//!   deformation, Bayesian tile autotuning, the configuration pipeline,
//!   and the throughput-mode serving layer with its content-addressed
//!   report cache;
//! * [`models`] — the YOLACT-style detector, the synthetic deformed-shapes
//!   dataset, COCO-style mAP, and the full-size model zoo.
//!
//! ## Quickstart
//!
//! ```
//! use defcon::prelude::*;
//!
//! // A deformable layer from the paper's sweep, on the simulated Xavier.
//! let gpu = Gpu::new(DeviceConfig::xavier_agx());
//! let shape = DeformLayerShape::same3x3(128, 128, 69, 69);
//! let (x, offsets) = synthetic_inputs(&shape, 4.0, 7);
//!
//! let baseline = DeformConvOp::baseline(shape);
//! let defcon = DeformConvOp { method: SamplingMethod::Tex2dPlusPlus, ..baseline.clone() };
//!
//! let t_base = baseline.simulate_total(&gpu, &x, &offsets).0;
//! let t_tex = defcon.simulate_total(&gpu, &x, &offsets).0;
//! assert!(t_tex < t_base, "texture hardware should win");
//! ```

pub use defcon_accel as accel;
pub use defcon_core as core;
pub use defcon_gpusim as gpusim;
pub use defcon_kernels as kernels;
pub use defcon_models as models;
pub use defcon_nn as nn;
pub use defcon_tensor as tensor;

/// The most commonly used items in one import.
pub mod prelude {
    pub use defcon_accel::{Accel, AccelConfig};
    pub use defcon_core::autotune::Autotuner;
    pub use defcon_core::lut::{LatencyKey, LatencyLut};
    pub use defcon_core::pipeline::{DefconConfig, TileChoice};
    pub use defcon_core::search::{IntervalSearch, SearchConfig, SearchModel};
    pub use defcon_core::serve::{
        RequestPolicy, ServeConfig, ServeDevice, SimRequest, SimResponse, SimServer,
    };
    pub use defcon_gpusim::{DeviceConfig, Gpu, SamplePolicy};
    pub use defcon_kernels::backend::{Backend, BackendKind};
    pub use defcon_kernels::op::{
        synthetic_inputs, synthetic_modulation, DeformConvOp, OffsetPredictorKind, OpFamily,
        SamplingMethod,
    };
    pub use defcon_kernels::{paper_layer_sweep, DeformLayerShape, TileConfig};
    pub use defcon_models::backbone::{BackboneConfig, SlotKind};
    pub use defcon_models::dataset::DeformedShapesConfig;
    pub use defcon_models::trainer::TrainConfig;
    pub use defcon_models::YolactLite;
    pub use defcon_nn::graph::{ParamStore, Tape};
    pub use defcon_tensor::sample::OffsetTransform;
    pub use defcon_tensor::Tensor;
}
